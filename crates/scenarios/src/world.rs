//! Declarative world specifications that lower into [`ScenarioConfig`].
//!
//! A [`WorldSpec`] is a *delta* over a base scenario: it rescales the
//! arrival process, swaps in a heterogeneous fleet mix, shapes the week
//! with per-day rate factors, and schedules [`WorldEvent`]s — the
//! engine-facing ones (capacity derates, price spikes, PV droughts)
//! lower into the [`EventTimeline`](geoplace_dcsim::events::EventTimeline),
//! the workload-facing ones (flash crowds, correlated-batch cohorts)
//! lower into the arrival process's burst/cohort knobs.
//!
//! Specs are **scale-free**: crowd sizes and cohort sizes are fractions
//! of the base world's expected population, so the same named preset
//! stresses a 100-VM bench world and a 10,000-VM stress world in
//! proportion. Lowering is pure — `spec.apply(base)` is a function of
//! its inputs, with no RNG and no ambient state.

use geoplace_dcsim::config::ScenarioConfig;
use geoplace_dcsim::events::{EngineEvent, EventKind};
use geoplace_workload::arrivals::{BurstConfig, CohortConfig, ScriptedArrival};
use geoplace_workload::mix::FleetMix;

/// One scheduled perturbation of a world.
///
/// Slot indices are absolute; presets keep their windows inside the
/// first day so every scale (including shortened CI horizons) sees
/// them. Fleet-shaped magnitudes are fractions of the base world's
/// expected VM population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorldEvent {
    /// Maintenance window: DC `dc` (or all) keeps `factor` of its
    /// servers over `[start_slot, end_slot)`.
    CapacityDerate {
        /// Target DC (`None` = every DC).
        dc: Option<u16>,
        /// First affected slot.
        start_slot: u32,
        /// One past the last affected slot.
        end_slot: u32,
        /// Usable server fraction, in (0, 1].
        factor: f64,
    },
    /// Tariff multiplier over a window.
    PriceSpike {
        /// Target DC (`None` = every DC).
        dc: Option<u16>,
        /// First affected slot.
        start_slot: u32,
        /// One past the last affected slot.
        end_slot: u32,
        /// Tariff multiplier (> 1 spikes).
        factor: f64,
    },
    /// PV output multiplier over a window (droughts: factor < 1).
    PvDerate {
        /// Target DC (`None` = every DC).
        dc: Option<u16>,
        /// First affected slot.
        start_slot: u32,
        /// One past the last affected slot.
        end_slot: u32,
        /// Remaining PV fraction, in [0, 1].
        factor: f64,
    },
    /// Flash crowd: short-lived web groups pour in over a window,
    /// admission-capped at a fraction of the base population.
    FlashCrowd {
        /// First slot of the crowd.
        start_slot: u32,
        /// Crowd duration in slots.
        duration_slots: u32,
        /// Burst arrival rate as a multiple of the base group rate.
        rate_mult: f64,
        /// Mean lifetime of crowd VMs, slots.
        mean_lifetime_slots: f64,
        /// Concurrency cap as a fraction of the expected population.
        peak_fraction: f64,
    },
    /// Correlated-batch cohort: one fully meshed application group of
    /// `fraction` × expected-population batch VMs at a fixed slot.
    Cohort {
        /// Arrival slot (>= 1).
        slot: u32,
        /// Cohort size as a fraction of the expected population.
        fraction: f64,
        /// Fixed lifetime of every member, slots.
        lifetime_slots: u32,
    },
    /// Whole-DC outage: the engine marks `dc` unusable over the window
    /// and forcibly evacuates its VMs through the migration model.
    DcOutage {
        /// The DC that goes dark (outages always name a concrete DC).
        dc: u16,
        /// First affected slot.
        start_slot: u32,
        /// One past the last affected slot.
        end_slot: u32,
    },
    /// Network partition: links touching `dc` (or every link) keep only
    /// `factor` of their bandwidth over the window, inflating migration
    /// latencies and degraded-path response times.
    NetworkPartition {
        /// Target DC (`None` = every link).
        dc: Option<u16>,
        /// First affected slot.
        start_slot: u32,
        /// One past the last affected slot.
        end_slot: u32,
        /// Remaining link-bandwidth fraction, in (0, 1].
        factor: f64,
    },
    /// Cascading derate: a capacity derate that starts at an origin DC
    /// and propagates to each higher-indexed DC `lag_slots` later.
    CascadeDerate {
        /// Origin DC of the failure front.
        dc: u16,
        /// First affected slot at the origin.
        start_slot: u32,
        /// One past the last affected slot at the origin.
        end_slot: u32,
        /// Usable server fraction at each reached DC, in (0, 1].
        factor: f64,
        /// Slots the front takes to reach each next DC (>= 1).
        lag_slots: u32,
    },
}

/// A named, composable world specification.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldSpec {
    /// Registry name (`--scenario NAME`).
    pub name: &'static str,
    /// One-line description of what the world stresses.
    pub stresses: &'static str,
    /// Qualitative policy ranking the world is expected to produce
    /// (documentation for the matrix report and the README table).
    pub expected_ranking: &'static str,
    /// Multiplier on the base group arrival rate.
    pub arrival_rate_scale: f64,
    /// Multiplier on the base mean VM lifetime.
    pub lifetime_scale: f64,
    /// Heterogeneous fleet composition (empty = the paper's fleet).
    pub mix: FleetMix,
    /// Per-day arrival-rate factors (empty = a flat week).
    pub day_rate_factors: Vec<f64>,
    /// Scheduled perturbations.
    pub events: Vec<WorldEvent>,
    /// Trace-scripted arrivals appended to the synthetic stream (empty
    /// = purely synthetic; filled by trace-replay worlds).
    pub scripted: Vec<ScriptedArrival>,
}

impl WorldSpec {
    /// A spec that changes nothing — the paper's world under a new name.
    pub fn baseline(
        name: &'static str,
        stresses: &'static str,
        expected_ranking: &'static str,
    ) -> Self {
        WorldSpec {
            name,
            stresses,
            expected_ranking,
            arrival_rate_scale: 1.0,
            lifetime_scale: 1.0,
            mix: FleetMix::default(),
            day_rate_factors: Vec::new(),
            events: Vec::new(),
            scripted: Vec::new(),
        }
    }

    /// Lowers the spec onto a base configuration (typically one of the
    /// harness scales). Pure and deterministic: same spec + same base →
    /// identical `ScenarioConfig`, hence identical reports.
    pub fn apply(&self, mut config: ScenarioConfig) -> ScenarioConfig {
        // The fleet-shaped magnitudes anchor on the *base* population,
        // before this spec's own rescaling.
        let base_population = config.fleet.arrivals.expected_population();
        let base_rate = config.fleet.arrivals.groups_per_slot;
        {
            let arrivals = &mut config.fleet.arrivals;
            arrivals.groups_per_slot *= self.arrival_rate_scale;
            arrivals.mean_lifetime_slots *= self.lifetime_scale;
            // Keep the slot-0 population on the rescaled steady state
            // (Little's law: rate × lifetime).
            arrivals.initial_groups = (f64::from(arrivals.initial_groups)
                * self.arrival_rate_scale
                * self.lifetime_scale)
                .round()
                .max(1.0) as u32;
            arrivals.mix = self.mix.clone();
            arrivals.day_rate_factors = self.day_rate_factors.clone();
        }
        for event in &self.events {
            match *event {
                WorldEvent::CapacityDerate {
                    dc,
                    start_slot,
                    end_slot,
                    factor,
                } => config.timeline.push(EngineEvent {
                    dc,
                    start_slot,
                    end_slot,
                    kind: EventKind::CapacityDerate { factor },
                }),
                WorldEvent::PriceSpike {
                    dc,
                    start_slot,
                    end_slot,
                    factor,
                } => config.timeline.push(EngineEvent {
                    dc,
                    start_slot,
                    end_slot,
                    kind: EventKind::PriceSpike { factor },
                }),
                WorldEvent::PvDerate {
                    dc,
                    start_slot,
                    end_slot,
                    factor,
                } => config.timeline.push(EngineEvent {
                    dc,
                    start_slot,
                    end_slot,
                    kind: EventKind::PvDerate { factor },
                }),
                WorldEvent::FlashCrowd {
                    start_slot,
                    duration_slots,
                    rate_mult,
                    mean_lifetime_slots,
                    peak_fraction,
                } => config.fleet.arrivals.bursts.push(BurstConfig {
                    start_slot,
                    duration_slots,
                    groups_per_slot: base_rate * rate_mult,
                    mean_lifetime_slots,
                    peak_vms: ((base_population * peak_fraction).round() as u32).max(1),
                }),
                WorldEvent::Cohort {
                    slot,
                    fraction,
                    lifetime_slots,
                } => config.fleet.arrivals.cohorts.push(CohortConfig {
                    slot,
                    vms: ((base_population * fraction).round() as u32).max(2),
                    lifetime_slots,
                }),
                WorldEvent::DcOutage {
                    dc,
                    start_slot,
                    end_slot,
                } => config.timeline.push(EngineEvent {
                    dc: Some(dc),
                    start_slot,
                    end_slot,
                    kind: EventKind::DcOutage,
                }),
                WorldEvent::NetworkPartition {
                    dc,
                    start_slot,
                    end_slot,
                    factor,
                } => config.timeline.push(EngineEvent {
                    dc,
                    start_slot,
                    end_slot,
                    kind: EventKind::NetworkPartition { factor },
                }),
                WorldEvent::CascadeDerate {
                    dc,
                    start_slot,
                    end_slot,
                    factor,
                    lag_slots,
                } => config.timeline.push(EngineEvent {
                    dc: Some(dc),
                    start_slot,
                    end_slot,
                    kind: EventKind::CascadeDerate { factor, lag_slots },
                }),
            }
        }
        config
            .fleet
            .arrivals
            .scripted
            .extend(self.scripted.iter().copied());
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_spec_is_the_identity() {
        let base = ScenarioConfig::paper(7);
        let spec = WorldSpec::baseline("noop", "nothing", "paper order");
        assert_eq!(spec.apply(base.clone()), base);
    }

    #[test]
    fn rate_and_lifetime_scales_preserve_steady_state() {
        let base = ScenarioConfig::paper(7);
        let mut spec = WorldSpec::baseline("churny", "churn", "-");
        spec.arrival_rate_scale = 4.0;
        spec.lifetime_scale = 0.25;
        let config = spec.apply(base.clone());
        assert!(config.validate().is_ok());
        let before = base.fleet.arrivals.expected_population();
        let after = config.fleet.arrivals.expected_population();
        assert!((before - after).abs() / before < 1e-9);
        assert_eq!(
            config.fleet.arrivals.initial_groups,
            base.fleet.arrivals.initial_groups
        );
    }

    #[test]
    fn fleet_events_scale_with_the_base_population() {
        let mut spec = WorldSpec::baseline("crowds", "bursts", "-");
        spec.events = vec![
            WorldEvent::FlashCrowd {
                start_slot: 3,
                duration_slots: 4,
                rate_mult: 6.0,
                mean_lifetime_slots: 2.0,
                peak_fraction: 0.4,
            },
            WorldEvent::Cohort {
                slot: 2,
                fraction: 0.1,
                lifetime_slots: 6,
            },
        ];
        let small = spec.apply(ScenarioConfig::scaled(1));
        let large = spec.apply(ScenarioConfig::paper(1));
        assert!(small.validate().is_ok() && large.validate().is_ok());
        let small_peak = small.fleet.arrivals.bursts[0].peak_vms;
        let large_peak = large.fleet.arrivals.bursts[0].peak_vms;
        assert!(
            large_peak > small_peak * 5,
            "peaks must track the fleet: {small_peak} vs {large_peak}"
        );
        assert!(large.fleet.arrivals.cohorts[0].vms > small.fleet.arrivals.cohorts[0].vms);
    }

    #[test]
    fn engine_events_land_on_the_timeline() {
        let mut spec = WorldSpec::baseline("dark", "drought", "-");
        spec.events = vec![
            WorldEvent::PvDerate {
                dc: None,
                start_slot: 0,
                end_slot: 48,
                factor: 0.2,
            },
            WorldEvent::PriceSpike {
                dc: Some(1),
                start_slot: 6,
                end_slot: 18,
                factor: 3.0,
            },
            WorldEvent::CapacityDerate {
                dc: Some(0),
                start_slot: 4,
                end_slot: 10,
                factor: 0.5,
            },
        ];
        let config = spec.apply(ScenarioConfig::scaled(1));
        assert!(config.validate().is_ok());
        assert_eq!(config.timeline.events().len(), 3);
        assert!(config.fleet.arrivals.bursts.is_empty());
    }

    #[test]
    fn failure_events_and_scripts_lower_onto_the_config() {
        use geoplace_workload::trace::TraceKind;
        let mut spec = WorldSpec::baseline("failing", "outages", "-");
        spec.events = vec![
            WorldEvent::DcOutage {
                dc: 0,
                start_slot: 4,
                end_slot: 7,
            },
            WorldEvent::NetworkPartition {
                dc: Some(1),
                start_slot: 5,
                end_slot: 9,
                factor: 0.3,
            },
            WorldEvent::CascadeDerate {
                dc: 0,
                start_slot: 8,
                end_slot: 10,
                factor: 0.6,
                lag_slots: 1,
            },
        ];
        spec.scripted = vec![ScriptedArrival {
            slot: 2,
            memory_gb: 4.0,
            lifetime_slots: 6,
            kind: TraceKind::WebServing,
            trace_seed: 9,
        }];
        let config = spec.apply(ScenarioConfig::scaled(1));
        assert!(config.validate().is_ok());
        assert_eq!(config.timeline.events().len(), 3);
        assert!(config
            .timeline
            .events()
            .iter()
            .any(|e| e.kind == EventKind::DcOutage && e.dc == Some(0)));
        assert_eq!(config.fleet.arrivals.scripted.len(), 1);
        assert_eq!(config.fleet.arrivals.scripted[0].slot, 2);
    }
}
