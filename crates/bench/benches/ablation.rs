//! Ablation benches for the design choices DESIGN.md calls out: the α
//! trade-off knob, the effective-bandwidth model of Algorithm 1, and the
//! green controller's arbitrage rule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geoplace_bench::{proposed_config_for, run_proposed_with, Scale};
use geoplace_core::ProposedConfig;
use geoplace_core::ProposedPolicy;
use geoplace_dcsim::engine::{Scenario, Simulator};
use geoplace_energy::green::GreenController;
use geoplace_network::latency::EffectiveBandwidthModel;
use geoplace_network::{BerDistribution, LatencyModel, Topology};
use geoplace_types::units::Megabytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_alpha(c: &mut Criterion) {
    let mut config = Scale::Bench.config(42);
    config.horizon_slots = 4;
    let mut group = c.benchmark_group("alpha_knob");
    group.sample_size(10);
    for alpha in [0.0f64, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            b.iter(|| {
                run_proposed_with(
                    &config,
                    ProposedConfig {
                        alpha,
                        ..proposed_config_for(&config)
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_bandwidth_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("effective_bandwidth_model");
    for (name, model) in [
        ("paper_linear", EffectiveBandwidthModel::PaperLinear),
        (
            "frame_retransmission",
            EffectiveBandwidthModel::FrameRetransmission,
        ),
    ] {
        let latency = LatencyModel::new(
            Topology::paper_default().expect("paper"),
            BerDistribution::paper_default(),
        )
        .with_bandwidth_model(model);
        group.bench_with_input(BenchmarkId::from_parameter(name), &latency, |b, latency| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| latency.global_data_latency(Megabytes(100_000.0), &mut rng))
        });
    }
    group.finish();
}

fn bench_green_arbitrage(c: &mut Criterion) {
    let mut config = Scale::Bench.config(42);
    config.horizon_slots = 4;
    let mut group = c.benchmark_group("green_arbitrage");
    group.sample_size(10);
    for (name, disable) in [("on", false), ("off", true)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &disable,
            |b, &disable| {
                b.iter(|| {
                    let scenario = Scenario::build(&config).expect("valid");
                    let mut policy = ProposedPolicy::new(proposed_config_for(&config));
                    Simulator::new(scenario)
                        .with_green_controller(GreenController {
                            disable_arbitrage: disable,
                        })
                        .run(&mut policy)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    ablations,
    bench_alpha,
    bench_bandwidth_models,
    bench_green_arbitrage
);
criterion_main!(ablations);
