//! Criterion micro-benchmarks of the algorithm kernels — the paper claims
//! the two-phase heuristic has "low computational overhead that can be
//! applied in real-time"; these benches quantify each phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geoplace_core::{
    allocate, compute_caps, kmeans, revise_migrations, CapsConfig, ForceLayout, ForceLayoutConfig,
    KMeansConfig, LocalAllocConfig, VmPlacementInput,
};
use geoplace_dcsim::config::ScenarioConfig;
use geoplace_dcsim::engine::Scenario;
use geoplace_network::{BerDistribution, LatencyModel, Topology, TrafficMatrix};
use geoplace_types::time::TimeSlot;
use geoplace_types::units::{Gigabytes, Joules, Megabytes, Seconds};
use geoplace_types::{DcId, Exec, Parallelism, VmArena};
use geoplace_workload::cpucorr::CpuCorrelationMatrix;
use geoplace_workload::fleet::{FleetConfig, VmFleet};
use geoplace_workload::sparsity::SparsityConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fleet_of(n_groups: u32) -> VmFleet {
    let mut config = FleetConfig::default();
    config.arrivals.initial_groups = n_groups;
    config.arrivals.group_size_range = (2, 4);
    config.arrivals.seed = 77;
    VmFleet::new(config).expect("valid fleet")
}

fn bench_correlation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_correlation");
    for groups in [20u32, 60] {
        let fleet = fleet_of(groups);
        let windows = fleet.windows(TimeSlot(0));
        group.bench_with_input(
            BenchmarkId::from_parameter(windows.len()),
            &windows,
            |b, w| b.iter(|| CpuCorrelationMatrix::compute(w)),
        );
    }
    group.finish();
}

fn bench_force_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_layout");
    for groups in [20u32, 60] {
        let fleet = fleet_of(groups);
        let windows = fleet.windows(TimeSlot(0));
        let arena = VmArena::from_ids(windows.ids());
        let cpu = CpuCorrelationMatrix::compute(&windows);
        let traffic = fleet.data_correlation().traffic_graph(&arena);
        group.bench_with_input(
            BenchmarkId::from_parameter(windows.len()),
            &windows,
            |b, _| {
                b.iter(|| {
                    let mut layout = ForceLayout::new(ForceLayoutConfig::default(), 1);
                    layout.update(&arena, &cpu, &traffic).len()
                })
            },
        );
    }
    group.finish();
}

/// The full correlation + layout slot step, dense vs sparse, at the
/// repro (~400), paper (~1,200) and stress (~10,000) fleet sizes. The
/// dense variant is skipped at 10,000 — its n² matrices are exactly the
/// wall this pipeline removes (≈400 MB and ~10¹¹ window ops per slot).
fn bench_slot_step_dense_vs_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_step");
    for (label, groups) in [("400", 133u32), ("1200", 400), ("10000", 3333)] {
        let fleet = fleet_of(groups);
        let windows = fleet.windows(TimeSlot(0));
        let n = windows.len();
        let arena = VmArena::from_ids(windows.ids());
        let sparsity = SparsityConfig::default();
        if n < 2_000 {
            group.bench_with_input(
                BenchmarkId::new("dense", format!("{label}(n={n})")),
                &windows,
                |b, w| {
                    b.iter(|| {
                        let cpu = CpuCorrelationMatrix::compute(w);
                        let traffic = fleet.data_correlation().traffic_graph(&arena);
                        let mut layout = ForceLayout::new(ForceLayoutConfig::default(), 1);
                        layout.update(&arena, &cpu, &traffic).len()
                    })
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new("sparse", format!("{label}(n={n})")),
            &windows,
            |b, w| {
                b.iter(|| {
                    let cpu = CpuCorrelationMatrix::compute_sparse(w, &sparsity);
                    let traffic = fleet.data_correlation().traffic_graph(&arena);
                    let mut layout = ForceLayout::new(ForceLayoutConfig::default(), 1);
                    layout.update(&arena, &cpu, &traffic).len()
                })
            },
        );
    }
    group.finish();
}

/// Multi-core scaling of the sparse slot step (CSR correlation build +
/// traffic graph + force layout) at the paper (~1,200) and stress
/// (~10,000) fleet sizes, at 1/2/4/8 worker threads. The determinism
/// contract makes every row compute the identical result — only the
/// wall clock may move. The acceptance bar: ≥ 2.5× at 8 threads for
/// n = 10,000 on an 8-core host.
fn bench_slot_step_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_step_threads");
    for (label, groups) in [("1200", 400u32), ("10000", 3333)] {
        let fleet = fleet_of(groups);
        let windows = fleet.windows(TimeSlot(0));
        let n = windows.len();
        let arena = VmArena::from_ids(windows.ids());
        let sparsity = SparsityConfig::default();
        for threads in [1usize, 2, 4, 8] {
            let exec = Exec::new(Parallelism::Threads(threads));
            group.bench_with_input(
                BenchmarkId::new(format!("{threads}t"), format!("{label}(n={n})")),
                &windows,
                |b, w| {
                    b.iter(|| {
                        let cpu =
                            geoplace_workload::cpucorr::CpuCorrelationMatrix::compute_sparse_exec(
                                w,
                                geoplace_workload::cpucorr::CorrelationMetric::PeakCoincidence,
                                &sparsity,
                                exec,
                            );
                        let traffic = fleet.data_correlation().traffic_graph_exec(&arena, exec);
                        let mut layout =
                            ForceLayout::new(ForceLayoutConfig::default(), 1).with_exec(exec);
                        layout.update(&arena, &cpu, &traffic).len()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let fleet = fleet_of(60);
    let windows = fleet.windows(TimeSlot(0));
    let arena = VmArena::from_ids(windows.ids());
    let cpu = CpuCorrelationMatrix::compute(&windows);
    let traffic = fleet.data_correlation().traffic_graph(&arena);
    let mut layout = ForceLayout::new(ForceLayoutConfig::default(), 1);
    let points = layout.update(&arena, &cpu, &traffic).to_vec();
    let loads: Vec<Joules> = (0..points.len()).map(|i| Joules(1.0 + i as f64)).collect();
    let caps = vec![Joules(1e5); 3];
    c.bench_function("kmeans_capacity_capped", |b| {
        b.iter(|| kmeans(&points, &loads, &caps, None, KMeansConfig::default()))
    });
}

fn bench_local_allocation(c: &mut Criterion) {
    // End-to-end slot decisions exercise allocate() with realistic
    // windows; bench it through a scenario snapshot.
    let config = ScenarioConfig::scaled(3);
    let scenario = Scenario::build(&config).expect("valid");
    let windows = scenario.fleet.windows(TimeSlot(0));
    let n = windows.len();
    drop(scenario);
    c.bench_function("local_allocate_via_fixture", move |b| {
        let rows: Vec<(u32, Vec<f32>)> = (0..n as u32)
            .map(|i| {
                (
                    i,
                    (0..720)
                        .map(|t| ((t + i as usize) % 7) as f32 * 0.1)
                        .collect(),
                )
            })
            .collect();
        let fixture = geoplace_core::testutil::SnapshotFixture::new(rows, vec![2; n]);
        let snapshot = fixture.snapshot();
        let model = geoplace_dcsim::power::ServerPowerModel::xeon_e5410();
        let positions: Vec<usize> = (0..n).collect();
        b.iter(|| {
            allocate(
                &positions,
                &snapshot,
                &model,
                200,
                LocalAllocConfig::default(),
            )
        })
    });
}

fn bench_algorithm1_latency(c: &mut Criterion) {
    let model = LatencyModel::new(
        Topology::paper_default().expect("paper"),
        BerDistribution::paper_default(),
    );
    let mut group = c.benchmark_group("algorithm1_global_latency");
    for mb in [1_000.0, 100_000.0, 1_000_000.0] {
        group.bench_with_input(BenchmarkId::from_parameter(mb as u64), &mb, |b, &mb| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| model.global_data_latency(Megabytes(mb), &mut rng))
        });
    }
    group.finish();
}

fn bench_eq1_total_latency(c: &mut Criterion) {
    let model = LatencyModel::new(
        Topology::paper_default().expect("paper"),
        BerDistribution::paper_default(),
    );
    let mut traffic = TrafficMatrix::new(3);
    traffic.add(DcId(0), DcId(1), Megabytes(50_000.0));
    traffic.add(DcId(2), DcId(1), Megabytes(25_000.0));
    traffic.add(DcId(1), DcId(0), Megabytes(10_000.0));
    c.bench_function("eq1_total_latency", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| model.total_latency(DcId(1), &traffic, &mut rng))
    });
}

fn bench_migration_revision(c: &mut Criterion) {
    let latency = LatencyModel::new(
        Topology::paper_default().expect("paper"),
        BerDistribution::error_free(),
    );
    let centroids = vec![
        geoplace_core::Point { x: 0.0, y: 0.0 },
        geoplace_core::Point { x: 10.0, y: 0.0 },
        geoplace_core::Point { x: 0.0, y: 10.0 },
    ];
    let vms: Vec<VmPlacementInput> = (0..200u32)
        .map(|i| VmPlacementInput {
            vm: geoplace_types::VmId(i),
            prev: Some(DcId((i % 3) as u16)),
            target: DcId(((i + 1) % 3) as u16),
            position: geoplace_core::Point {
                x: f64::from(i % 17),
                y: f64::from(i % 11),
            },
            load: Joules(1e6),
            size: Gigabytes(2.0),
        })
        .collect();
    let caps = vec![Joules(1e9); 3];
    c.bench_function("algorithm2_migration_revision", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            revise_migrations(&vms, &centroids, &caps, &latency, Seconds(72.0), &mut rng)
        })
    });
}

fn bench_caps(c: &mut Criterion) {
    let config = ScenarioConfig::scaled(5);
    let scenario = Scenario::build(&config).expect("valid");
    // Build DcInfos via a one-slot simulated snapshot is heavy; fabricate
    // through the fixture instead.
    drop(scenario);
    let fixture = geoplace_core::testutil::SnapshotFixture::new(vec![(0, vec![0.5; 8])], vec![2]);
    let snapshot = fixture.snapshot();
    c.bench_function("capacity_caps", |b| {
        b.iter(|| compute_caps(snapshot.dcs, CapsConfig::default()))
    });
}

criterion_group!(
    kernels,
    bench_correlation,
    bench_force_layout,
    bench_slot_step_dense_vs_sparse,
    bench_slot_step_thread_scaling,
    bench_kmeans,
    bench_local_allocation,
    bench_algorithm1_latency,
    bench_eq1_total_latency,
    bench_migration_revision,
    bench_caps
);
criterion_main!(kernels);
