//! Criterion benches that regenerate each figure at mini scale and time a
//! full policy run — `cargo bench` therefore re-derives every figure's
//! data (printed once per bench) while measuring simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geoplace_bench::{figures, run_all, run_policy, PolicyKind, Scale};
use std::sync::OnceLock;

/// One shared mini-scale run per bench binary: printing the figures is a
/// side effect of the first access; the benches then time fresh runs.
fn shared_reports() -> &'static Vec<geoplace_dcsim::metrics::SimulationReport> {
    static REPORTS: OnceLock<Vec<geoplace_dcsim::metrics::SimulationReport>> = OnceLock::new();
    REPORTS.get_or_init(|| {
        let config = Scale::Bench.config(42);
        let reports = run_all(&config);
        println!("\n===== figures at bench scale (one day, ~70 VMs) =====");
        print!("{}", figures::all_figures(&reports));
        print!("{}", figures::migration_summary(&reports));
        println!("======================================================\n");
        reports
    })
}

fn bench_policy_runs(c: &mut Criterion) {
    let _ = shared_reports();
    let mut config = Scale::Bench.config(42);
    config.horizon_slots = 6;
    let mut group = c.benchmark_group("six_slot_simulation");
    group.sample_size(10);
    for kind in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| b.iter(|| run_policy(&config, kind)),
        );
    }
    group.finish();
}

fn bench_figure_rendering(c: &mut Criterion) {
    let reports = shared_reports();
    c.bench_function("render_all_figures", |b| {
        b.iter(|| figures::all_figures(reports))
    });
}

criterion_group!(figure_benches, bench_policy_runs, bench_figure_rendering);
criterion_main!(figure_benches);
