//! Tier-1 gates of the deterministic multi-core executor, built on the
//! same paired harness as the dense↔sparse agreement gate: the *same
//! seed* is driven through the full closed simulation loop once per
//! worker-thread count, and the reports must agree **bit for bit** —
//! not statistically. Chunk boundaries are functions of the arena and
//! partials fold in chunk order, so `threads ∈ {1, 2, 8}` walking
//! different schedules must land on the identical `Totals` (cost,
//! energy, QoS) and identical hourly series.

use geoplace_bench::scenario::{run_proposed_with, stress_proposed_config};
use geoplace_bench::Scale;
use geoplace_core::ProposedConfig;
use geoplace_dcsim::metrics::SimulationReport;
use geoplace_types::Parallelism;

/// One full day-scale run with both the engine's and the policy's
/// kernels pinned to `threads` workers.
fn day_run(seed: u64, sparse: bool, threads: usize) -> SimulationReport {
    let mut config = Scale::Bench.config(seed);
    config.horizon_slots = 24;
    config.parallelism = Parallelism::Threads(threads);
    if sparse {
        config.sparsity = config.sparsity.sparse();
    }
    let proposed = ProposedConfig {
        parallelism: Parallelism::Threads(threads),
        ..ProposedConfig::default()
    };
    run_proposed_with(&config, proposed)
}

/// Multi-seed paired sweep: per seed, every thread count must reproduce
/// the single-thread report exactly — cost, energy and QoS totals down
/// to the last bit, plus the full hourly and per-DC series.
fn assert_thread_invariance(sparse: bool) {
    const SEEDS: [u64; 3] = [7, 42, 999];
    for &seed in &SEEDS {
        let reference = day_run(seed, sparse, 1);
        for threads in [2usize, 8] {
            let report = day_run(seed, sparse, threads);
            let (t, r) = (report.totals(), reference.totals());
            assert_eq!(
                t.cost_eur.to_bits(),
                r.cost_eur.to_bits(),
                "sparse={sparse} seed={seed} t={threads}: cost diverged"
            );
            assert_eq!(
                t.energy_gj.to_bits(),
                r.energy_gj.to_bits(),
                "sparse={sparse} seed={seed} t={threads}: energy diverged"
            );
            assert_eq!(
                t.mean_response_s.to_bits(),
                r.mean_response_s.to_bits(),
                "sparse={sparse} seed={seed} t={threads}: QoS diverged"
            );
            assert_eq!(
                report, reference,
                "sparse={sparse} seed={seed} t={threads}: full report diverged"
            );
        }
    }
}

#[test]
fn day_scale_dense_is_thread_count_invariant() {
    assert_thread_invariance(false);
}

#[test]
fn day_scale_sparse_is_thread_count_invariant() {
    assert_thread_invariance(true);
}

#[test]
fn stress_scale_is_thread_count_invariant() {
    // Two slots of the ≈10k-VM scenario — enough to cross every parallel
    // kernel (sparse CSR build, grid force layout, per-DC fan-out) at
    // real fleet size without the full-day runtime.
    let run = |threads: usize| {
        let mut config = Scale::Stress.config(42);
        config.horizon_slots = 2;
        config.parallelism = Parallelism::Threads(threads);
        let mut proposed = stress_proposed_config();
        proposed.parallelism = Parallelism::Threads(threads);
        run_proposed_with(&config, proposed)
    };
    let reference = run(1);
    for threads in [2usize, 8] {
        assert_eq!(run(threads), reference, "stress t={threads}");
    }
}
