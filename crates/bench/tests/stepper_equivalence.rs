//! Three ways of pumping the slot lifecycle — `Simulator::run`, a
//! hand-driven [`SlotStepper`] and a scripted `geoplace-serve`
//! [`Session`] — must produce bit-identical reports.
//!
//! The stepper sweep is checked against the *committed* golden digests
//! (`tests/golden/digests.tsv`), so `run ≡ stepper` holds transitively
//! through the existing golden-report test without re-running the
//! engine here; the session sweep and the proptest close the triangle
//! directly. Thread-count and incremental-mode invariance is asserted
//! through the stepper path too — the executor contract says none of it
//! may move a digest.

use geoplace_baselines::{EnerAwarePolicy, NetAwarePolicy, PriAwarePolicy};
use geoplace_bench::json::Value;
use geoplace_bench::scenario::{
    golden_digests_path, parse_golden_file, proposed_config_for, quick_matrix_config, run_policy,
    PolicyKind,
};
use geoplace_bench::serve::Session;
use geoplace_core::ProposedPolicy;
use geoplace_dcsim::config::{IncrementalConfig, ScenarioConfig};
use geoplace_dcsim::engine::Scenario;
use geoplace_dcsim::policy::GlobalPolicy;
use geoplace_dcsim::stepper::SlotStepper;
use geoplace_types::Parallelism;
use geoplace_workload::source::SyntheticSource;
use proptest::prelude::*;

/// Drives the stepper by hand, exactly as `Simulator::run` does.
fn stepper_digest(config: &ScenarioConfig, kind: PolicyKind) -> String {
    let mut policy: Box<dyn GlobalPolicy> = match kind {
        PolicyKind::Proposed => Box::new(ProposedPolicy::new(proposed_config_for(config))),
        PolicyKind::PriAware => Box::new(PriAwarePolicy::new()),
        PolicyKind::EnerAware => Box::new(EnerAwarePolicy::new()),
        PolicyKind::NetAware => Box::new(NetAwarePolicy::new()),
    };
    let mut stepper = SlotStepper::new(Scenario::build(config).expect("valid config"));
    let mut source = SyntheticSource;
    while !stepper.is_done() {
        stepper
            .advance_world(&mut source)
            .expect("synthetic advance");
        let decision = policy.decide(&stepper.observe());
        stepper.apply(decision).expect("policy decisions are valid");
    }
    stepper.into_report(policy.name()).digest()
}

/// Drives an in-process serve session over the same world with scripted
/// protocol lines, returning the shutdown response's digest.
fn session_digest(config: &ScenarioConfig, kind: PolicyKind) -> String {
    let mut session = Session::new(config, kind, false).expect("valid config");
    for _ in 0..config.horizon_slots {
        for cmd in [r#"{"cmd":"advance"}"#, r#"{"cmd":"decide"}"#] {
            let response = session.handle_line(cmd);
            let value = Value::parse(&response.line).expect("valid JSON response");
            assert_eq!(
                value.get("ok").and_then(Value::as_bool),
                Some(true),
                "{cmd} failed: {}",
                response.line
            );
        }
    }
    let response = session.handle_line(r#"{"cmd":"shutdown"}"#);
    assert!(response.shutdown);
    Value::parse(&response.line)
        .expect("valid JSON response")
        .get("digest")
        .and_then(Value::as_str)
        .expect("shutdown carries the digest")
        .to_owned()
}

fn goldens() -> std::collections::BTreeMap<String, String> {
    let content = std::fs::read_to_string(golden_digests_path()).expect("committed golden digests");
    parse_golden_file(&content)
}

#[test]
fn stepper_reproduces_every_golden_cell_at_seed_42() {
    let goldens = goldens();
    for spec in geoplace_scenarios::registry() {
        for kind in PolicyKind::ALL {
            let config = quick_matrix_config(&spec, 42);
            let key = format!("{}\t{}\t42", spec.name, kind.name());
            let expected = goldens
                .get(&key)
                .unwrap_or_else(|| panic!("no golden {key}"));
            assert_eq!(
                &stepper_digest(&config, kind),
                expected,
                "stepper drifted from golden {key}"
            );
        }
    }
}

#[test]
fn serve_session_reproduces_golden_cells() {
    // Every preset under the Proposed policy, plus every policy on the
    // paper preset — enough to cover both axes without re-running the
    // whole 24-cell matrix a third time.
    let goldens = goldens();
    let mut cells: Vec<(geoplace_scenarios::WorldSpec, PolicyKind)> = Vec::new();
    for spec in geoplace_scenarios::registry() {
        cells.push((spec, PolicyKind::Proposed));
    }
    for kind in [
        PolicyKind::EnerAware,
        PolicyKind::PriAware,
        PolicyKind::NetAware,
    ] {
        cells.push((geoplace_scenarios::presets::paper(), kind));
    }
    for (spec, kind) in cells {
        let config = quick_matrix_config(&spec, 42);
        let key = format!("{}\t{}\t42", spec.name, kind.name());
        let expected = goldens
            .get(&key)
            .unwrap_or_else(|| panic!("no golden {key}"));
        assert_eq!(
            &session_digest(&config, kind),
            expected,
            "serve session drifted from golden {key}"
        );
    }
}

#[test]
fn stepper_is_thread_and_incremental_invariant() {
    // churn_storm stresses the delta path hardest (heavy arrivals and
    // departures every slot); seed 41 picks the golden row the seed-42
    // tests above never touch.
    let goldens = goldens();
    let spec = geoplace_scenarios::presets::named("churn_storm").expect("registered preset");
    let expected = goldens
        .get("churn_storm\tProposed\t41")
        .expect("golden row");
    for threads in [1usize, 2, 8] {
        for mode in [IncrementalConfig::Auto, IncrementalConfig::Off] {
            let mut config = quick_matrix_config(&spec, 41);
            config.parallelism = Parallelism::Threads(threads);
            config.incremental = mode;
            assert_eq!(
                &stepper_digest(&config, PolicyKind::Proposed),
                expected,
                "threads={threads} mode={mode:?} moved the digest"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// On small random worlds, all three drivers agree bit-for-bit.
    #[test]
    fn run_stepper_and_session_agree(
        seed in 0u64..1000,
        preset in 0usize..6,
        policy in 0usize..4,
        thread_pick in 0usize..3,
        incremental in any::<bool>(),
        slots in 2u32..4,
    ) {
        let registry = geoplace_scenarios::registry();
        let spec = &registry[preset % registry.len()];
        let kind = PolicyKind::ALL[policy];
        let mut config = quick_matrix_config(spec, seed);
        config.horizon_slots = slots;
        config.parallelism = Parallelism::Threads([1, 2, 8][thread_pick]);
        config.incremental = if incremental {
            IncrementalConfig::Auto
        } else {
            IncrementalConfig::Off
        };
        let via_run = run_policy(&config, kind).digest();
        prop_assert_eq!(&stepper_digest(&config, kind), &via_run);
        prop_assert_eq!(&session_digest(&config, kind), &via_run);
    }
}

/// The ISSUE's service-longevity gate: a 1000-command scripted external
/// session — arrivals, departures, traffic wiring, slot advances,
/// mid-run state and metrics reads, sprinkled malformed lines — must
/// complete with every error structured and the world still consistent.
#[test]
fn thousand_command_external_session_survives() {
    let mut config = ScenarioConfig::scaled(7);
    config.horizon_slots = 150;
    let mut session = Session::new(&config, PolicyKind::EnerAware, true).expect("valid config");

    let reply = |session: &mut Session, line: &str| -> Value {
        let response = session.handle_line(line);
        assert!(!response.shutdown, "only the final command shuts down");
        Value::parse(&response.line).expect("every response is valid JSON")
    };
    let expect_ok = |session: &mut Session, line: &str| -> Value {
        let value = reply(session, line);
        assert_eq!(
            value.get("ok").and_then(Value::as_bool),
            Some(true),
            "{line} -> {}",
            value.render()
        );
        value
    };

    let mut commands = 0usize;
    // External ids that have crossed a boundary (active, lifetime 1000
    // slots — they never expire naturally inside the horizon).
    let mut applied: Vec<u64> = Vec::new();
    let mut queued: Vec<u64> = Vec::new();
    for round in 0..100u64 {
        // ~3 arrivals per round.
        for k in 0..3 {
            let value = expect_ok(
                &mut session,
                &format!(
                    r#"{{"cmd":"vm_arrive","memory_gb":{},"lifetime_slots":1000,"profile":"{}","trace_seed":{}}}"#,
                    1.0 + ((round + k) % 7) as f64,
                    ["web", "batch", "hpc"][(round as usize + k as usize) % 3],
                    round * 31 + k
                ),
            );
            commands += 1;
            queued.push(value.get("id").and_then(Value::as_u64).expect("arrival id"));
        }
        // One departure of a long-applied VM.
        if applied.len() > 4 {
            let id = applied.remove(0);
            expect_ok(&mut session, &format!(r#"{{"cmd":"vm_depart","id":{id}}}"#));
            commands += 1;
        }
        // Two traffic wires among surviving applied VMs.
        if applied.len() >= 2 {
            for k in 0..2u64 {
                let a = applied[(round as usize + k as usize) % applied.len()];
                let b = applied[(round as usize + k as usize + 1) % applied.len()];
                if a != b {
                    expect_ok(
                        &mut session,
                        &format!(
                            r#"{{"cmd":"wire_traffic","a":{a},"b":{b},"a_to_b_mb":{},"b_to_a_mb":0.5}}"#,
                            (round % 9) as f64 + 1.0
                        ),
                    );
                    commands += 1;
                }
            }
        }
        // Mid-run reads in both phases.
        expect_ok(&mut session, r#"{"cmd":"get_state"}"#);
        commands += 1;
        // Every 20th round: a malformed line and a mistimed command,
        // both of which must be structured errors, not exits.
        if round % 20 == 3 {
            let bad = reply(&mut session, "{not json at all");
            assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));
            let mistimed = reply(&mut session, r#"{"cmd":"decide"}"#);
            assert_eq!(mistimed.get("ok").and_then(Value::as_bool), Some(false));
            commands += 2;
        }
        expect_ok(&mut session, r#"{"cmd":"advance"}"#);
        expect_ok(&mut session, r#"{"cmd":"get_state"}"#);
        expect_ok(&mut session, r#"{"cmd":"decide"}"#);
        commands += 3;
        if round % 10 == 9 {
            expect_ok(&mut session, r#"{"cmd":"metrics"}"#);
            commands += 1;
        }
        applied.append(&mut queued);
    }

    assert!(commands >= 1000, "only {commands} commands scripted");
    assert_eq!(session.stepper().completed_slots(), 100);
    let fleet_size = session.stepper().scenario().fleet.active().len();
    // ~300 arrivals minus ~95 departures on top of the (naturally
    // expiring) initial fleet: the active set must stay bounded — no
    // leak of departed VMs.
    assert!(
        (100..1000).contains(&fleet_size),
        "implausible fleet size {fleet_size}"
    );
    let response = session.handle_line(r#"{"cmd":"shutdown"}"#);
    assert!(response.shutdown);
    let value = Value::parse(&response.line).expect("valid JSON");
    assert_eq!(value.get("slots").and_then(Value::as_u64), Some(100));
}
