//! Hostile-input survival for the serve session.
//!
//! The service contract is that malformed or mistimed input yields a
//! structured `{"ok":false,...}` error and the session keeps running —
//! it must never panic, overflow the stack, or drift the simulation.
//! This test throws the worst lines we know of at a live session and
//! then checks the session still reproduces the exact `run_policy`
//! digest, i.e. hostility left no trace in the engine state.

use geoplace_bench::json::Value;
use geoplace_bench::serve::{Response, Session};
use geoplace_bench::{run_policy, PolicyKind};
use geoplace_dcsim::config::ScenarioConfig;

fn tiny() -> ScenarioConfig {
    let mut config = ScenarioConfig::scaled(11);
    config.horizon_slots = 3;
    config
}

fn err(response: &Response) -> Result<String, String> {
    let value = Value::parse(&response.line)?;
    if value.get("ok").and_then(Value::as_bool) != Some(false) {
        return Err(format!("expected ok:false, got {}", response.line));
    }
    value
        .get("error")
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("no error field in {}", response.line))
}

fn ok(response: &Response) -> Result<Value, String> {
    let value = Value::parse(&response.line)?;
    if value.get("ok").and_then(Value::as_bool) != Some(true) {
        return Err(format!("expected ok:true, got {}", response.line));
    }
    Ok(value)
}

/// Lines that used to (or plausibly could) kill the process. Each must
/// come back as a structured error, not a panic.
fn hostile_lines() -> Vec<String> {
    vec![
        // Deep nesting: the recursive-descent JSON parser used to walk
        // arbitrarily deep and blow the stack on inputs like this.
        "[".repeat(200_000),
        format!("{}{}", r#"{"a":"#.repeat(100_000), "1"),
        // Just over the depth cap — rejected by the cap, not the stack.
        format!("{}1{}", "[".repeat(129), "]".repeat(129)),
        // Unterminated string / truncated escapes.
        r#"{"cmd":"adva"#.to_owned(),
        r#""\u00"#.to_owned(),
        "\"\\".to_owned(),
        // A megabyte of unbroken garbage.
        "x".repeat(1 << 20),
        // Valid JSON, wrong shapes.
        "null".to_owned(),
        "[]".to_owned(),
        r#"{"cmd":42}"#.to_owned(),
        r#"{"cmd":""}"#.to_owned(),
        // NUL bytes and non-ASCII noise.
        "\u{0}\u{0}\u{0}".to_owned(),
        "{\"cmd\":\"\u{1F4A3}\"}".to_owned(),
        // Mistimed / malformed external commands in synthetic mode.
        r#"{"cmd":"vm_arrive","memory_gb":2.0,"lifetime_slots":4}"#.to_owned(),
        r#"{"cmd":"vm_depart","id":-1}"#.to_owned(),
        r#"{"cmd":"wire_traffic","a":1,"b":1,"a_to_b_mb":-5.0,"b_to_a_mb":1e308}"#.to_owned(),
        // Numbers that don't fit anywhere sensible.
        r#"{"cmd":"advance","slots":1e999}"#.to_owned(),
    ]
}

#[test]
fn hostile_lines_get_structured_errors() -> Result<(), String> {
    let mut session = Session::new(&tiny(), PolicyKind::Proposed, false)?;
    for line in hostile_lines() {
        let response = session.handle_line(&line);
        assert!(
            !response.shutdown,
            "hostile line shut the session down: {:.60}",
            line
        );
        let message = err(&response)?;
        assert!(!message.is_empty(), "empty error for {:.60}", line);
    }
    // Still alive and drivable after the barrage.
    ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
    Ok(())
}

#[test]
fn deep_nesting_is_rejected_without_stack_overflow() -> Result<(), String> {
    let mut session = Session::new(&tiny(), PolicyKind::NetAware, false)?;
    // Alternating array/object nesting defeats any single-shape guard.
    let line = "[{\"a\":".repeat(50_000);
    let message = err(&session.handle_line(&line))?;
    assert!(
        message.contains("nesting") || message.contains("malformed"),
        "unexpected error: {message}"
    );
    Ok(())
}

/// A DC outage mid-session: the engine evacuates the downed DC, and the
/// session keeps answering `get_state`/`decide` with structured JSON —
/// the outaged DC is flagged in the DC facts, decisions that target it
/// get rerouted rather than panicking, and hostile lines thrown at the
/// session mid-outage still leave the digest bit-identical to the
/// offline run of the same failure world.
#[test]
fn mid_outage_sessions_answer_with_structure_not_panics() -> Result<(), String> {
    use geoplace_dcsim::events::{EngineEvent, EventKind};
    let mut config = tiny();
    config.timeline.push(EngineEvent {
        dc: Some(0),
        start_slot: 1,
        end_slot: 3,
        kind: EventKind::DcOutage,
    });
    let expected = run_policy(&config, PolicyKind::Proposed).digest();

    let mut session = Session::new(&config, PolicyKind::Proposed, false)?;
    let hostile = hostile_lines();
    let mut hostile_iter = hostile.iter().cycle();
    // The first advance is the slot-0 bootstrap boundary; the outage
    // window [1, 3) covers the second and third advances.
    for slot in 0..config.horizon_slots {
        err(&session.handle_line(hostile_iter.next().expect("cycle")))?;
        ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        let state = ok(&session.handle_line(r#"{"cmd":"get_state"}"#))?;
        let dcs = state
            .get("dcs")
            .and_then(Value::as_array)
            .ok_or("no dcs array mid-decision")?;
        let outaged: Vec<bool> = dcs
            .iter()
            .map(|dc| dc.get("outaged").and_then(Value::as_bool) == Some(true))
            .collect();
        let in_window = (1..3).contains(&slot);
        assert_eq!(
            outaged,
            vec![in_window, false, false],
            "slot {slot}: the evacuated DC must be flagged exactly inside its window"
        );
        err(&session.handle_line(hostile_iter.next().expect("cycle")))?;
        let decided = ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
        assert!(
            decided
                .get("active_servers")
                .and_then(Value::as_u64)
                .is_some(),
            "decide mid-outage must return the usual structured record"
        );
    }
    let response = session.handle_line(r#"{"cmd":"shutdown"}"#);
    assert!(response.shutdown);
    let digest = ok(&response)?
        .get("digest")
        .and_then(Value::as_str)
        .ok_or("no digest in shutdown response")?
        .to_owned();
    assert_eq!(digest, expected, "mid-outage hostility perturbed the run");
    Ok(())
}

/// External-mode churn during an evacuation: arrivals land, a departure
/// naming a VM that never existed is a structured boundary error (not a
/// panic), and the session stays drivable through the outage window.
#[test]
fn evacuation_survives_external_churn_and_bad_targets() -> Result<(), String> {
    use geoplace_dcsim::events::{EngineEvent, EventKind};
    let mut config = tiny();
    config.horizon_slots = 4;
    config.timeline.push(EngineEvent {
        dc: Some(0),
        start_slot: 1,
        end_slot: 4,
        kind: EventKind::DcOutage,
    });
    let mut session = Session::new(&config, PolicyKind::NetAware, true)?;
    ok(&session.handle_line(r#"{"cmd":"vm_arrive","memory_gb":4.0,"lifetime_slots":6}"#))?;
    ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
    ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
    // A departure for a VM that never existed: rejected at the next
    // boundary with a structured error, mid-outage, session intact.
    ok(&session.handle_line(r#"{"cmd":"vm_depart","id":4000000}"#))?;
    assert!(err(&session.handle_line(r#"{"cmd":"advance"}"#))?.contains("not an active VM"));
    ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
    ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
    let state = ok(&session.handle_line(r#"{"cmd":"get_state"}"#))?;
    assert_eq!(state.get("done").and_then(Value::as_bool), Some(false));
    Ok(())
}

/// A `restore` pointed at garbage bytes: pure noise fails the magic
/// check, magic-prefixed noise fails deeper in the header — both come
/// back as structured errors naming the section and byte offset, and
/// the session drives on to the exact uninterrupted digest.
#[test]
fn garbage_snapshot_bytes_never_kill_the_session() -> Result<(), String> {
    let config = tiny();
    let expected = run_policy(&config, PolicyKind::Proposed).digest();
    let mut session = Session::new(&config, PolicyKind::Proposed, false)?;

    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    // Deterministic xorshift noise — hostile-input tests must not pull
    // OS entropy any more than the engine may.
    let mut word = 0x9E37_79B9_7F4A_7C15u64;
    let mut noise = Vec::with_capacity(4096);
    for _ in 0..4096 {
        word ^= word << 13;
        word ^= word >> 7;
        word ^= word << 17;
        noise.push(word as u8);
    }
    let pure_noise = dir.join("garbage_noise.gpck");
    std::fs::write(&pure_noise, &noise).map_err(|e| e.to_string())?;
    // The same noise behind a valid magic: gets past the first check
    // and must still die on a named header field, not a panic.
    let mut magicked = b"GPCK".to_vec();
    magicked.extend_from_slice(&noise);
    let magic_noise = dir.join("garbage_magic.gpck");
    std::fs::write(&magic_noise, &magicked).map_err(|e| e.to_string())?;

    for path in [&pure_noise, &magic_noise] {
        let line = format!(r#"{{"cmd":"restore","path":"{}"}}"#, path.display());
        let message = err(&session.handle_line(&line))?;
        assert!(
            message.contains("snapshot section"),
            "restore error must name the bad section and offset: {message}"
        );
    }
    let _ = std::fs::remove_file(&pure_noise);
    let _ = std::fs::remove_file(&magic_noise);

    for _ in 0..config.horizon_slots {
        ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
    }
    let response = session.handle_line(r#"{"cmd":"shutdown"}"#);
    assert!(response.shutdown);
    let digest = ok(&response)?
        .get("digest")
        .and_then(Value::as_str)
        .ok_or("no digest in shutdown response")?
        .to_owned();
    assert_eq!(digest, expected, "garbage restores perturbed the run");
    Ok(())
}

#[test]
fn hostile_interleaving_leaves_the_digest_untouched() -> Result<(), String> {
    let config = tiny();
    let expected = run_policy(&config, PolicyKind::Proposed).digest();

    let mut session = Session::new(&config, PolicyKind::Proposed, false)?;
    let hostile = hostile_lines();
    let mut hostile_iter = hostile.iter().cycle();
    for _ in 0..config.horizon_slots {
        // A hostile line before every legitimate command.
        if let Some(line) = hostile_iter.next() {
            err(&session.handle_line(line))?;
        }
        ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        if let Some(line) = hostile_iter.next() {
            err(&session.handle_line(line))?;
        }
        ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
    }
    let response = session.handle_line(r#"{"cmd":"shutdown"}"#);
    assert!(response.shutdown);
    let digest = ok(&response)?
        .get("digest")
        .and_then(Value::as_str)
        .ok_or("no digest in shutdown response")?
        .to_owned();
    assert_eq!(
        digest, expected,
        "hostile input perturbed the simulation digest"
    );
    Ok(())
}
