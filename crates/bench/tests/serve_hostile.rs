//! Hostile-input survival for the serve session.
//!
//! The service contract is that malformed or mistimed input yields a
//! structured `{"ok":false,...}` error and the session keeps running —
//! it must never panic, overflow the stack, or drift the simulation.
//! This test throws the worst lines we know of at a live session and
//! then checks the session still reproduces the exact `run_policy`
//! digest, i.e. hostility left no trace in the engine state.

use geoplace_bench::json::Value;
use geoplace_bench::serve::{Response, Session};
use geoplace_bench::{run_policy, PolicyKind};
use geoplace_dcsim::config::ScenarioConfig;

fn tiny() -> ScenarioConfig {
    let mut config = ScenarioConfig::scaled(11);
    config.horizon_slots = 3;
    config
}

fn err(response: &Response) -> Result<String, String> {
    let value = Value::parse(&response.line)?;
    if value.get("ok").and_then(Value::as_bool) != Some(false) {
        return Err(format!("expected ok:false, got {}", response.line));
    }
    value
        .get("error")
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("no error field in {}", response.line))
}

fn ok(response: &Response) -> Result<Value, String> {
    let value = Value::parse(&response.line)?;
    if value.get("ok").and_then(Value::as_bool) != Some(true) {
        return Err(format!("expected ok:true, got {}", response.line));
    }
    Ok(value)
}

/// Lines that used to (or plausibly could) kill the process. Each must
/// come back as a structured error, not a panic.
fn hostile_lines() -> Vec<String> {
    vec![
        // Deep nesting: the recursive-descent JSON parser used to walk
        // arbitrarily deep and blow the stack on inputs like this.
        "[".repeat(200_000),
        format!("{}{}", r#"{"a":"#.repeat(100_000), "1"),
        // Just over the depth cap — rejected by the cap, not the stack.
        format!("{}1{}", "[".repeat(129), "]".repeat(129)),
        // Unterminated string / truncated escapes.
        r#"{"cmd":"adva"#.to_owned(),
        r#""\u00"#.to_owned(),
        "\"\\".to_owned(),
        // A megabyte of unbroken garbage.
        "x".repeat(1 << 20),
        // Valid JSON, wrong shapes.
        "null".to_owned(),
        "[]".to_owned(),
        r#"{"cmd":42}"#.to_owned(),
        r#"{"cmd":""}"#.to_owned(),
        // NUL bytes and non-ASCII noise.
        "\u{0}\u{0}\u{0}".to_owned(),
        "{\"cmd\":\"\u{1F4A3}\"}".to_owned(),
        // Mistimed / malformed external commands in synthetic mode.
        r#"{"cmd":"vm_arrive","memory_gb":2.0,"lifetime_slots":4}"#.to_owned(),
        r#"{"cmd":"vm_depart","id":-1}"#.to_owned(),
        r#"{"cmd":"wire_traffic","a":1,"b":1,"a_to_b_mb":-5.0,"b_to_a_mb":1e308}"#.to_owned(),
        // Numbers that don't fit anywhere sensible.
        r#"{"cmd":"advance","slots":1e999}"#.to_owned(),
    ]
}

#[test]
fn hostile_lines_get_structured_errors() -> Result<(), String> {
    let mut session = Session::new(&tiny(), PolicyKind::Proposed, false)?;
    for line in hostile_lines() {
        let response = session.handle_line(&line);
        assert!(
            !response.shutdown,
            "hostile line shut the session down: {:.60}",
            line
        );
        let message = err(&response)?;
        assert!(!message.is_empty(), "empty error for {:.60}", line);
    }
    // Still alive and drivable after the barrage.
    ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
    Ok(())
}

#[test]
fn deep_nesting_is_rejected_without_stack_overflow() -> Result<(), String> {
    let mut session = Session::new(&tiny(), PolicyKind::NetAware, false)?;
    // Alternating array/object nesting defeats any single-shape guard.
    let line = "[{\"a\":".repeat(50_000);
    let message = err(&session.handle_line(&line))?;
    assert!(
        message.contains("nesting") || message.contains("malformed"),
        "unexpected error: {message}"
    );
    Ok(())
}

#[test]
fn hostile_interleaving_leaves_the_digest_untouched() -> Result<(), String> {
    let config = tiny();
    let expected = run_policy(&config, PolicyKind::Proposed).digest();

    let mut session = Session::new(&config, PolicyKind::Proposed, false)?;
    let hostile = hostile_lines();
    let mut hostile_iter = hostile.iter().cycle();
    for _ in 0..config.horizon_slots {
        // A hostile line before every legitimate command.
        if let Some(line) = hostile_iter.next() {
            err(&session.handle_line(line))?;
        }
        ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        if let Some(line) = hostile_iter.next() {
            err(&session.handle_line(line))?;
        }
        ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
    }
    let response = session.handle_line(r#"{"cmd":"shutdown"}"#);
    assert!(response.shutdown);
    let digest = ok(&response)?
        .get("digest")
        .and_then(Value::as_str)
        .ok_or("no digest in shutdown response")?
        .to_owned();
    assert_eq!(
        digest, expected,
        "hostile input perturbed the simulation digest"
    );
    Ok(())
}
