//! Tier-1 gates of the sparse slot pipeline:
//!
//! * dense ↔ sparse placement-quality agreement at repro fleet scale,
//!   measured the only statistically honest way — as a paired multi-seed
//!   mean. Per-seed totals of the closed simulation loop are chaotic (a
//!   perturbed RNG seed alone moves the weekly cost total by ±5–10%,
//!   dense vs dense), so per-seed deltas measure weather, not the
//!   approximation; the paired mean cancels the sign-alternating chaos
//!   and exposes any systematic bias of the sparse path.
//! * same-seed bitwise determinism of the sparse path.
//! * the ≈10,000-VM stress scenario completing a full one-day horizon.

use geoplace_bench::scenario::{run_proposed_with, stress_proposed_config};
use geoplace_bench::Scale;
use geoplace_core::ProposedConfig;
use geoplace_dcsim::metrics::Totals;

fn paired_run(seed: u64, horizon: u32, sparse: bool) -> Totals {
    let mut config = Scale::Repro.config(seed);
    config.horizon_slots = horizon;
    config.sparsity = if sparse {
        let mut sparsity = config.sparsity.sparse();
        // Repro-fleet tuning: cover the whole fleet in the candidate
        // screen so only the far-field approximation differs from dense.
        sparsity.top_k = 64;
        sparsity.candidates_per_vm = 512;
        sparsity
    } else {
        config.sparsity.dense()
    };
    // Same ProposedConfig on both sides — the paired comparison isolates
    // the sparse correlation/layout approximation, nothing else.
    run_proposed_with(&config, ProposedConfig::default()).totals()
}

#[test]
fn dense_and_sparse_pipelines_agree_within_two_percent() {
    const SEEDS: [u64; 8] = [7, 11, 23, 42, 77, 101, 131, 999];
    const HORIZON: u32 = 24;
    let mut dense = (0.0f64, 0.0f64, 0.0f64);
    let mut sparse = (0.0f64, 0.0f64, 0.0f64);
    for &seed in &SEEDS {
        let d = paired_run(seed, HORIZON, false);
        dense = (
            dense.0 + d.cost_eur,
            dense.1 + d.energy_gj,
            dense.2 + d.mean_response_s,
        );
        let s = paired_run(seed, HORIZON, true);
        sparse = (
            sparse.0 + s.cost_eur,
            sparse.1 + s.energy_gj,
            sparse.2 + s.mean_response_s,
        );
    }
    let rel = |a: f64, b: f64| (b / a - 1.0).abs();
    assert!(
        rel(dense.0, sparse.0) < 0.02,
        "cost paired mean diverges {:.2}%: {:.2} vs {:.2}",
        rel(dense.0, sparse.0) * 100.0,
        dense.0,
        sparse.0
    );
    assert!(
        rel(dense.1, sparse.1) < 0.02,
        "energy paired mean diverges {:.2}%: {:.3} vs {:.3}",
        rel(dense.1, sparse.1) * 100.0,
        dense.1,
        sparse.1
    );
    assert!(
        rel(dense.2, sparse.2) < 0.02,
        "QoS (mean response) paired mean diverges {:.2}%: {:.1} vs {:.1}",
        rel(dense.2, sparse.2) * 100.0,
        dense.2,
        sparse.2
    );
}

#[test]
fn sparse_pipeline_is_bitwise_deterministic() {
    let run = || {
        let mut config = Scale::Bench.config(13);
        config.horizon_slots = 6;
        config.sparsity = config.sparsity.sparse();
        run_proposed_with(&config, stress_proposed_config())
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same-seed sparse runs must be identical");
}

#[test]
fn stress_scenario_completes_one_day() {
    let config = Scale::Stress.config(42);
    assert_eq!(config.horizon_slots, 24, "stress horizon is one day");
    let report = run_proposed_with(&config, stress_proposed_config());
    assert_eq!(report.hourly.len(), 24, "must finish every slot");
    let totals = report.totals();
    assert!(
        totals.energy_gj.is_finite() && totals.energy_gj > 0.0,
        "energy {}",
        totals.energy_gj
    );
    assert!(totals.cost_eur.is_finite() && totals.cost_eur > 0.0);
    let peak_vms = report.hourly.iter().map(|h| h.active_vms).max().unwrap();
    assert!(
        peak_vms >= 8_000,
        "stress run must actually be stress-scale, peaked at {peak_vms} VMs"
    );
}
