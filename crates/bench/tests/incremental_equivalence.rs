//! The incremental-pipeline equivalence contract (tier-1 gate).
//!
//! [`IncrementalConfig::Auto`] maintains the engine's observation
//! structures across slots from the fleet's churn delta;
//! [`IncrementalConfig::Off`] rebuilds them from scratch every slot. The
//! contract is that the two modes produce **bit-identical**
//! [`SimulationReport`]s — same digest — for every scenario, policy,
//! seed and worker-thread count. These tests pin that contract over the
//! scenario-preset registry and over proptest-generated churn-heavy
//! fleets at thread counts {1, 2, 8}.

use geoplace_bench::scenario::{quick_matrix_config, run_policy, PolicyKind};
use geoplace_dcsim::config::{IncrementalConfig, ScenarioConfig};
use geoplace_dcsim::metrics::SimulationReport;
use geoplace_types::Parallelism;
use proptest::prelude::*;

fn run_mode(
    config: &ScenarioConfig,
    kind: PolicyKind,
    mode: IncrementalConfig,
    threads: usize,
) -> SimulationReport {
    let mut config = config.clone();
    config.incremental = mode;
    config.parallelism = Parallelism::Threads(threads);
    run_policy(&config, kind)
}

/// Every scenario preset × every policy: incremental ≡ from-scratch at
/// the quick-matrix scale (the same cells the golden matrix pins).
#[test]
fn incremental_matches_from_scratch_across_all_presets() {
    for spec in geoplace_scenarios::registry() {
        let config = quick_matrix_config(&spec, 42);
        for policy in PolicyKind::ALL {
            let auto = run_mode(&config, policy, IncrementalConfig::Auto, 1);
            let off = run_mode(&config, policy, IncrementalConfig::Off, 1);
            assert_eq!(
                auto.digest(),
                off.digest(),
                "{} / {}: incremental diverged from from-scratch",
                spec.name,
                policy.name()
            );
            assert_eq!(auto, off, "{} / {}", spec.name, policy.name());
        }
    }
}

/// The churn-storm preset — the heaviest structural-delta load — at
/// worker-thread counts {1, 2, 8}: every (mode, threads) cell digests
/// identically.
#[test]
fn incremental_is_thread_invariant_under_churn_storm() {
    let spec = geoplace_scenarios::presets::named("churn_storm").expect("registered preset");
    let config = quick_matrix_config(&spec, 42);
    for policy in [PolicyKind::Proposed, PolicyKind::NetAware] {
        let reference = run_mode(&config, policy, IncrementalConfig::Off, 1);
        for threads in [1usize, 2, 8] {
            for mode in [IncrementalConfig::Auto, IncrementalConfig::Off] {
                let report = run_mode(&config, policy, mode, threads);
                assert_eq!(
                    report.digest(),
                    reference.digest(),
                    "{}: mode {mode:?} at {threads} threads diverged",
                    policy.name()
                );
            }
        }
    }
}

proptest! {
    // Each case runs 6 whole simulations; keep the case count tight —
    // the deterministic preset sweep above covers breadth, this covers
    // arbitrary churn shapes.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Churn-heavy random fleets: incremental ≡ from-scratch digests at
    /// thread counts {1, 2, 8}.
    #[test]
    fn incremental_equivalence_on_random_churn_fleets(
        seed in 0u64..1000,
        initial_groups in 4u32..40,
        groups_per_slot in 0.5f64..6.0,
        mean_lifetime in 1.0f64..8.0,
        horizon in 3u32..7,
    ) {
        let mut config = ScenarioConfig::scaled(seed);
        config.horizon_slots = horizon;
        config.fleet.arrivals.seed = seed ^ 0xC0DE;
        config.fleet.arrivals.initial_groups = initial_groups;
        config.fleet.arrivals.groups_per_slot = groups_per_slot;
        config.fleet.arrivals.mean_lifetime_slots = mean_lifetime;
        let reference = run_mode(&config, PolicyKind::Proposed, IncrementalConfig::Off, 1);
        for threads in [1usize, 2, 8] {
            let auto = run_mode(&config, PolicyKind::Proposed, IncrementalConfig::Auto, threads);
            prop_assert_eq!(
                auto.digest(),
                reference.digest(),
                "incremental at {} threads diverged (seed {})",
                threads,
                seed
            );
        }
    }
}
