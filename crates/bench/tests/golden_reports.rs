//! Golden-report regression matrix (tier-1 gate).
//!
//! `tests/golden/digests.tsv` commits one canonical report digest per
//! (scenario preset, policy, seed) cell of the quick matrix — the bench
//! fleet at [`QUICK_MATRIX_SLOTS`] slots, seeds [`QUICK_MATRIX_SEEDS`].
//! This test recomputes the seed-42 rows (every preset × every policy)
//! and fails on any drift; the CI `scenario_matrix --quick --check` job
//! re-verifies the *full* file, including seed 41 and thread-count
//! invariance.
//!
//! **Regenerating after an intentional behavior change:**
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p geoplace_bench --test golden_reports
//! # or, equivalently:
//! cargo run --release --bin scenario_matrix -- --quick --update
//! ```
//!
//! Both paths produce identical files (they share
//! `quick_matrix_config` and the canonical row format). Commit the
//! rewritten `digests.tsv` together with the change that moved the
//! numbers, and say why in the PR.

use geoplace_bench::scenario::{
    golden_digests_path, golden_row, parse_golden_file, quick_matrix_config, render_golden_file,
    run_policy, PolicyKind, QUICK_MATRIX_SEEDS,
};

/// Recomputes the digest rows for the given seeds, in registry order.
fn compute_rows(seeds: &[u64]) -> Vec<String> {
    let mut rows = Vec::new();
    for spec in geoplace_scenarios::registry() {
        for &seed in seeds {
            let config = quick_matrix_config(&spec, seed);
            for policy in PolicyKind::ALL {
                let digest = run_policy(&config, policy).digest();
                rows.push(golden_row(spec.name, policy, seed, &digest));
            }
        }
    }
    rows
}

#[test]
fn golden_digests_match_the_committed_matrix() {
    // audit:allow(D2): GOLDEN_UPDATE is the explicit regeneration opt-in; it gates which file is written, never what the engine computes
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        let rows = compute_rows(&QUICK_MATRIX_SEEDS);
        std::fs::write(golden_digests_path(), render_golden_file(&rows))
            .expect("write golden digests");
        eprintln!(
            "golden digests regenerated at {}",
            golden_digests_path().display()
        );
        return;
    }

    let committed = std::fs::read_to_string(golden_digests_path()).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nGenerate the goldens first: GOLDEN_UPDATE=1 cargo test \
             -p geoplace_bench --test golden_reports",
            golden_digests_path().display()
        )
    });
    let golden = parse_golden_file(&committed);

    // The committed file must cover the full quick matrix: every
    // preset × policy × seed, nothing extra.
    let expected_cells =
        geoplace_scenarios::registry().len() * PolicyKind::ALL.len() * QUICK_MATRIX_SEEDS.len();
    assert_eq!(
        golden.len(),
        expected_cells,
        "golden file has {} rows, the quick matrix has {expected_cells} cells — regenerate",
        golden.len()
    );

    // Tier-1 recomputes the seed-42 slice; CI covers the rest.
    let mut drifted = Vec::new();
    for row in compute_rows(&[42]) {
        let (key, digest) = row.rsplit_once('\t').unwrap();
        match golden.get(key) {
            Some(expected) if expected == digest => {}
            Some(expected) => {
                drifted.push(format!("{key}: committed {expected}, recomputed {digest}"))
            }
            None => drifted.push(format!("{key}: missing from the golden file")),
        }
    }
    assert!(
        drifted.is_empty(),
        "golden digests drifted (intentional? regenerate per the header):\n{}",
        drifted.join("\n")
    );
}
