//! Randomized world fuzzing: the global engine invariants (tier-1).
//!
//! Proptest generates small worlds — random arrival regimes, scripted
//! trace arrivals, and event timelines mixing every [`EventKind`]
//! (including outages, partitions and cascades) — and runs short
//! horizons across all four policies in both engine modes. Every run
//! must uphold the invariants no perturbation is allowed to break:
//!
//! * **Ledger conservation** — [`SimulationReport::totals`] equals the
//!   sum of its own hourly records (cost, energy, migrations);
//! * **Physicality** — every hourly record is finite and non-negative,
//!   and IT energy never exceeds total (PUE ≥ 1);
//! * **No capacity overshoot** — powered-on servers never exceed the
//!   fleet-wide usable capacity implied by the timeline's derates,
//!   cascades and outages at that slot;
//! * **Determinism** — digests are bit-identical across worker-thread
//!   counts {1, 2, 8} and between the incremental and the from-scratch
//!   observation pipelines;
//! * **Sorted active sets** — the fleet's active-VM list stays strictly
//!   sorted through arbitrary churn, scripted arrivals included.
//!
//! To add an invariant, extend `check_invariants` (it runs against
//! every fuzzed report) — see README § Fuzzing. CI runs this file as a
//! dedicated capped step with `FUZZ_WORLDS_QUICK=1`.

use geoplace_bench::scenario::{policy_for, run_policy, PolicyKind};
use geoplace_dcsim::checkpoint::{checkpoint_with_policy, restore_with_policy};
use geoplace_dcsim::config::{IncrementalConfig, ScenarioConfig};
use geoplace_dcsim::engine::{Scenario, Simulator};
use geoplace_dcsim::events::{effective_servers, EngineEvent, EventKind};
use geoplace_dcsim::metrics::SimulationReport;
use geoplace_types::snap::Checkpoint;
use geoplace_types::time::TimeSlot;
use geoplace_types::Parallelism;
use geoplace_workload::arrivals::ScriptedArrival;
use geoplace_workload::fleet::VmFleet;
use geoplace_workload::source::SyntheticSource;
use geoplace_workload::trace::TraceKind;
use proptest::prelude::*;

/// Fuzz budget: CI's dedicated step caps the case count so the job
/// stays bounded; local runs get the fuller sweep.
fn fuzz_cases() -> u32 {
    // audit:allow(D2): the env var only picks the proptest case count, never simulation state
    if std::env::var_os("FUZZ_WORLDS_QUICK").is_some() {
        3
    } else {
        8
    }
}

/// One raw fuzzed event: (kind index, dc, fleet-wide flag) plus
/// (start, length, factor in percent, cascade lag). Lowered by
/// [`lower_event`].
type RawEvent = ((u8, u16, u8), (u32, u32, u32, u32));

fn event_strategy() -> impl Strategy<Value = RawEvent> {
    (
        (0u8..6, 0u16..3, 0u8..2),
        (0u32..6, 1u32..5, 20u32..101, 1u32..3),
    )
}

fn lower_event(((kind, dc, fleet_wide), (start, len, pct, lag)): RawEvent) -> EngineEvent {
    let factor = f64::from(pct) / 100.0;
    let targeted = Some(dc);
    let maybe = if fleet_wide == 1 { None } else { targeted };
    let (dc, kind) = match kind {
        0 => (maybe, EventKind::CapacityDerate { factor }),
        1 => (
            maybe,
            EventKind::PriceSpike {
                factor: 1.0 + factor * 3.0,
            },
        ),
        2 => (maybe, EventKind::PvDerate { factor }),
        // Outages and cascades always name a concrete DC.
        3 => (targeted, EventKind::DcOutage),
        4 => (maybe, EventKind::NetworkPartition { factor }),
        _ => (
            targeted,
            EventKind::CascadeDerate {
                factor,
                lag_slots: lag,
            },
        ),
    };
    EngineEvent {
        dc,
        start_slot: start,
        end_slot: start + len,
        kind,
    }
}

/// One raw scripted arrival: (slot, memory index, lifetime, kind index,
/// trace seed).
type RawScript = (u32, u8, u32, u8, u64);

fn script_strategy() -> impl Strategy<Value = RawScript> {
    (1u32..4, 0u8..4, 1u32..10, 0u8..3, 0u64..1000)
}

fn lower_script((slot, mem, lifetime, kind, seed): RawScript) -> ScriptedArrival {
    ScriptedArrival {
        slot,
        memory_gb: [1.0, 2.0, 4.0, 8.0][usize::from(mem)],
        lifetime_slots: lifetime,
        kind: [TraceKind::WebServing, TraceKind::Batch, TraceKind::Hpc][usize::from(kind)],
        trace_seed: seed,
    }
}

/// A small fuzzed world: the scaled base with a randomized arrival
/// regime, scripted arrivals and a randomized event timeline.
fn fuzzed_config(
    seed: u64,
    initial_groups: u32,
    groups_per_slot: f64,
    horizon: u32,
    events: &[RawEvent],
    scripts: &[RawScript],
) -> ScenarioConfig {
    let mut config = ScenarioConfig::scaled(seed);
    config.horizon_slots = horizon;
    config.fleet.arrivals.seed = seed ^ 0xF022;
    config.fleet.arrivals.initial_groups = initial_groups;
    config.fleet.arrivals.groups_per_slot = groups_per_slot;
    config.fleet.arrivals.scripted = scripts.iter().map(|&s| lower_script(s)).collect();
    for &raw in events {
        config.timeline.push(lower_event(raw));
    }
    config
}

/// Fleet-wide usable servers at `slot` under the timeline: outaged DCs
/// collapse to one server, everything else derates through the same
/// [`effective_servers`] the engine uses.
fn usable_capacity(config: &ScenarioConfig, slot: TimeSlot) -> u32 {
    config
        .dcs
        .iter()
        .enumerate()
        .map(|(d, dc)| {
            if config.timeline.outage_modulator(d).factor_at(slot) < 0.5 {
                1
            } else {
                effective_servers(
                    dc.servers,
                    config.timeline.capacity_modulator(d).factor_at(slot),
                )
            }
        })
        .sum()
}

fn run_mode(
    config: &ScenarioConfig,
    kind: PolicyKind,
    mode: IncrementalConfig,
    threads: usize,
) -> SimulationReport {
    let mut config = config.clone();
    config.incremental = mode;
    config.parallelism = Parallelism::Threads(threads);
    run_policy(&config, kind)
}

/// The global invariant suite, applied to every fuzzed report.
fn check_invariants(config: &ScenarioConfig, report: &SimulationReport) -> Result<(), String> {
    let fail = |msg: String| Err(format!("{}: {msg}", report.policy));
    if report.hourly.len() != config.horizon_slots as usize {
        return fail(format!(
            "expected {} hourly records, got {}",
            config.horizon_slots,
            report.hourly.len()
        ));
    }
    let (mut cost, mut energy_gj, mut migrations, mut overruns) = (0.0f64, 0.0f64, 0u64, 0u64);
    for h in &report.hourly {
        for (name, value) in [
            ("cost_eur", h.cost_eur),
            ("it_energy_j", h.it_energy_j),
            ("total_energy_j", h.total_energy_j),
            ("grid_energy_j", h.grid_energy_j),
            ("pv_used_j", h.pv_used_j),
            ("response_worst_s", h.response_worst_s),
            ("response_mean_s", h.response_mean_s),
            ("migration_volume_gb", h.migration_volume_gb),
        ] {
            if !value.is_finite() || value < 0.0 {
                return fail(format!("slot {}: {name} = {value} is unphysical", h.slot));
            }
        }
        if h.it_energy_j > h.total_energy_j * (1.0 + 1e-12) {
            return fail(format!(
                "slot {}: IT energy {} exceeds total {} (PUE < 1?)",
                h.slot, h.it_energy_j, h.total_energy_j
            ));
        }
        let cap = usable_capacity(config, TimeSlot(h.slot));
        if h.active_servers > cap {
            return fail(format!(
                "slot {}: {} powered servers overshoot the usable capacity {cap}",
                h.slot, h.active_servers
            ));
        }
        cost += h.cost_eur;
        energy_gj += h.total_energy_j / 1e9;
        migrations += u64::from(h.migrations);
        overruns += u64::from(h.migration_overruns);
    }
    let totals = report.totals();
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    if !close(totals.cost_eur, cost)
        || !close(totals.energy_gj, energy_gj)
        || totals.migrations != migrations
        || totals.migration_overruns != overruns
    {
        return fail(format!(
            "ledger broken: totals {totals:?} vs recomputed \
             (cost {cost}, energy {energy_gj} GJ, {migrations} migrations, {overruns} overruns)"
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Random worlds with failure-heavy timelines: every policy, both
    /// pipeline modes, thread counts {1, 2, 8} — the invariants hold
    /// and the digests agree.
    #[test]
    fn fuzzed_worlds_uphold_the_global_invariants(
        seed in 0u64..1000,
        initial_groups in 4u32..16,
        groups_per_slot in 0.5f64..3.0,
        horizon in 3u32..6,
        events in proptest::collection::vec(event_strategy(), 0..5),
        scripts in proptest::collection::vec(script_strategy(), 0..4),
    ) {
        let config = fuzzed_config(seed, initial_groups, groups_per_slot, horizon, &events, &scripts);
        prop_assert!(config.validate().is_ok(), "fuzzed config invalid: {:?}", config.validate());
        for policy in PolicyKind::ALL {
            let reference = run_mode(&config, policy, IncrementalConfig::Off, 1);
            if let Err(msg) = check_invariants(&config, &reference) {
                prop_assert!(false, "seed {}: {}", seed, msg);
            }
            for threads in [1usize, 2, 8] {
                let incremental =
                    run_mode(&config, policy, IncrementalConfig::Auto, threads);
                prop_assert_eq!(
                    incremental.digest(),
                    reference.digest(),
                    "{} seed {}: incremental at {} threads diverged from from-scratch",
                    policy.name(),
                    seed,
                    threads
                );
            }
        }
    }

    /// Checkpoint/resume is invisible: freezing a fuzzed world at a
    /// proptest-chosen slot boundary, round-tripping the snapshot
    /// through the codec, and resuming into fresh process state
    /// reproduces the uninterrupted run's digest AND its per-slot state
    /// hashes bit-for-bit. The timeline carries one event of every
    /// [`EventKind`] and the world runs in both engine modes.
    #[test]
    fn fuzzed_checkpoints_resume_bit_identically(
        seed in 0u64..1000,
        initial_groups in 4u32..12,
        groups_per_slot in 0.5f64..2.5,
        horizon in 3u32..6,
        ck_pick in 1u32..100,
        events in proptest::collection::vec(event_strategy(), 6),
    ) {
        // Force full kind coverage: event i carries kind i, so every
        // case exercises derates, spikes, outages, partitions and
        // cascades across the checkpoint boundary.
        let events: Vec<RawEvent> = events
            .iter()
            .enumerate()
            .map(|(i, &((_, dc, fleet_wide), rest))| ((i as u8, dc, fleet_wide), rest))
            .collect();
        let ck_slot = 1 + ck_pick % (horizon - 1);
        for mode in [IncrementalConfig::Off, IncrementalConfig::Auto] {
            let mut config =
                fuzzed_config(seed, initial_groups, groups_per_slot, horizon, &events, &[]);
            config.incremental = mode;
            prop_assert!(config.validate().is_ok(), "fuzzed config invalid: {:?}", config.validate());

            // Uninterrupted reference, recording every slot's state hash.
            let mut stepper = Simulator::new(Scenario::build(&config).unwrap()).into_stepper();
            let mut policy = policy_for(&config, PolicyKind::Proposed);
            let mut source = SyntheticSource;
            let mut reference_hashes = Vec::new();
            while !stepper.is_done() {
                stepper.advance_world(&mut source).unwrap();
                let d = policy.decide(&stepper.observe());
                reference_hashes.push(stepper.apply(d).unwrap().state_hash);
            }
            let reference = stepper.into_report(policy.name());

            // Interrupted run: freeze at ck_slot, codec round-trip,
            // restore into entirely fresh state, resume to the horizon.
            let mut stepper = Simulator::new(Scenario::build(&config).unwrap()).into_stepper();
            let mut policy = policy_for(&config, PolicyKind::Proposed);
            for _ in 0..ck_slot {
                stepper.advance_world(&mut source).unwrap();
                let d = policy.decide(&stepper.observe());
                stepper.apply(d).unwrap();
            }
            let ck = checkpoint_with_policy(&stepper, &*policy).unwrap();
            let ck = Checkpoint::decode(&ck.encode()).unwrap();
            prop_assert_eq!(
                ck.state_hash,
                reference_hashes[ck_slot as usize - 1],
                "checkpoint hash at slot {} diverged from the uninterrupted run ({:?})",
                ck_slot,
                mode
            );
            let mut resumed = Simulator::new(Scenario::build(&config).unwrap()).into_stepper();
            let mut fresh = policy_for(&config, PolicyKind::Proposed);
            restore_with_policy(&mut resumed, &mut *fresh, &ck).unwrap();
            let mut resumed_hashes = Vec::new();
            while !resumed.is_done() {
                resumed.advance_world(&mut source).unwrap();
                let d = fresh.decide(&resumed.observe());
                resumed_hashes.push(resumed.apply(d).unwrap().state_hash);
            }
            prop_assert_eq!(
                &resumed_hashes,
                &reference_hashes[ck_slot as usize..],
                "per-slot state hashes diverged after resuming at slot {} ({:?})",
                ck_slot,
                mode
            );
            let report = resumed.into_report(fresh.name());
            prop_assert_eq!(
                report.digest(),
                reference.digest(),
                "resumed digest diverged at checkpoint slot {} ({:?})",
                ck_slot,
                mode
            );
        }
    }

    /// The fleet's active set stays strictly sorted through arbitrary
    /// churn, scripted trace arrivals included.
    #[test]
    fn fuzzed_fleets_keep_sorted_active_sets(
        seed in 0u64..1000,
        initial_groups in 2u32..16,
        groups_per_slot in 0.5f64..4.0,
        horizon in 3u32..7,
        scripts in proptest::collection::vec(script_strategy(), 0..6),
    ) {
        let config = fuzzed_config(seed, initial_groups, groups_per_slot, horizon, &[], &scripts);
        let mut fleet = VmFleet::new(config.fleet).unwrap();
        for slot in 0..=horizon {
            if slot > 0 {
                fleet.advance_to(TimeSlot(slot));
            }
            let active = fleet.active();
            prop_assert!(
                active.windows(2).all(|w| w[0] < w[1]),
                "slot {}: active set unsorted or duplicated",
                slot
            );
        }
    }
}
