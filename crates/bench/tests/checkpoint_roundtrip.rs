//! Checkpoint/resume acceptance over the full golden matrix (tier-1).
//!
//! For every cell of the committed quick matrix — all presets ×
//! [`PolicyKind::ALL`] × seeds {41, 42}, 64 cells — the run is frozen
//! at mid-horizon, the snapshot round-trips through the codec (with
//! save→load→save byte identity asserted), and a **fresh** world +
//! policy restored from it finishes the horizon. The resumed digest
//! must equal the committed golden digest bit-for-bit: a checkpoint is
//! only correct if resuming from it is indistinguishable from never
//! having stopped.
//!
//! The engine mode (incremental/from-scratch) and kernel thread count
//! {1, 2, 8} cycle deterministically across cells, so every (mode,
//! threads) combination is exercised against multiple presets without
//! multiplying the runtime by six. A separate focused test pins the
//! per-slot state-hash convergence contract: identical hashes at every
//! boundary across both modes and all three thread counts.

use geoplace_bench::scenario::{
    golden_digests_path, parse_golden_file, policy_for, quick_matrix_config, PolicyKind,
    QUICK_MATRIX_SEEDS, QUICK_MATRIX_SLOTS,
};
use geoplace_dcsim::checkpoint::{checkpoint_with_policy, restore_with_policy};
use geoplace_dcsim::config::{IncrementalConfig, ScenarioConfig};
use geoplace_dcsim::engine::{Scenario, Simulator};
use geoplace_dcsim::stepper::SlotStepper;
use geoplace_types::snap::Checkpoint;
use geoplace_types::Parallelism;
use geoplace_workload::source::SyntheticSource;

fn fresh_stepper(config: &ScenarioConfig) -> SlotStepper {
    Simulator::new(Scenario::build(config).expect("golden config must be valid")).into_stepper()
}

/// Runs `config` with `kind`, interrupting at `ck_slot`: freeze,
/// codec round-trip (byte identity asserted), restore into fresh
/// state, finish. Returns the resumed report's digest.
fn resumed_digest(config: &ScenarioConfig, kind: PolicyKind, ck_slot: u32, cell: &str) -> String {
    let mut stepper = fresh_stepper(config);
    let mut policy = policy_for(config, kind);
    let mut source = SyntheticSource;
    for _ in 0..ck_slot {
        stepper.advance_world(&mut source).expect(cell);
        let d = policy.decide(&stepper.observe());
        stepper.apply(d).expect(cell);
    }
    let ck = checkpoint_with_policy(&stepper, &*policy).expect(cell);

    // save → load → save must be byte-identical: the codec admits
    // exactly one encoding per state.
    let bytes = ck.encode();
    let ck = Checkpoint::decode(&bytes).expect(cell);
    assert_eq!(
        ck.encode(),
        bytes,
        "{cell}: decode→encode is not byte-identical"
    );

    let mut resumed = fresh_stepper(config);
    let mut fresh = policy_for(config, kind);
    restore_with_policy(&mut resumed, &mut *fresh, &ck).expect(cell);
    while !resumed.is_done() {
        resumed.advance_world(&mut source).expect(cell);
        let d = fresh.decide(&resumed.observe());
        resumed.apply(d).expect(cell);
    }
    resumed.into_report(fresh.name()).digest()
}

#[test]
fn every_golden_cell_resumes_to_its_committed_digest() {
    let committed = std::fs::read_to_string(golden_digests_path()).unwrap_or_else(|e| {
        panic!("{}: {e}", golden_digests_path().display());
    });
    let golden = parse_golden_file(&committed);

    let mut drifted = Vec::new();
    let mut cell_index = 0usize;
    for spec in geoplace_scenarios::registry() {
        for &seed in &QUICK_MATRIX_SEEDS {
            for policy in PolicyKind::ALL {
                // Cycle mode and threads deterministically across cells.
                let mode = [IncrementalConfig::Off, IncrementalConfig::Auto][cell_index % 2];
                let threads = [1usize, 2, 8][(cell_index / 2) % 3];
                cell_index += 1;

                let mut config = quick_matrix_config(&spec, seed);
                config.incremental = mode;
                config.parallelism = Parallelism::Threads(threads);
                let cell = format!(
                    "{}/{}/seed {seed} ({mode:?}, {threads} threads)",
                    spec.name,
                    policy.name()
                );
                let digest = resumed_digest(&config, policy, QUICK_MATRIX_SLOTS / 2, &cell);

                let key = format!("{}\t{}\t{seed}", spec.name, policy.name());
                match golden.get(key.as_str()) {
                    Some(expected) if *expected == digest => {}
                    Some(expected) => drifted.push(format!(
                        "{cell}: committed {expected}, resumed run produced {digest}"
                    )),
                    None => drifted.push(format!("{cell}: missing from the golden file")),
                }
            }
        }
    }
    assert_eq!(
        cell_index, 64,
        "the quick matrix is expected to be 64 cells"
    );
    assert!(
        drifted.is_empty(),
        "checkpoint/resume diverged from the uninterrupted goldens:\n{}",
        drifted.join("\n")
    );
}

/// The state-hash convergence contract: the per-slot hash is a function
/// of the simulated state alone, so both engine modes and every thread
/// count must produce identical hash sequences — and the same sequence
/// must reappear after a mid-run restore.
#[test]
fn per_slot_state_hashes_are_mode_and_thread_invariant() {
    let spec = geoplace_scenarios::registry()
        .into_iter()
        .next()
        .expect("non-empty registry");
    let mut reference: Option<Vec<u64>> = None;
    for mode in [IncrementalConfig::Off, IncrementalConfig::Auto] {
        for threads in [1usize, 2, 8] {
            let mut config = quick_matrix_config(&spec, 42);
            config.incremental = mode;
            config.parallelism = Parallelism::Threads(threads);
            let mut stepper = fresh_stepper(&config);
            let mut policy = policy_for(&config, PolicyKind::Proposed);
            let mut source = SyntheticSource;
            let mut hashes = Vec::new();
            while !stepper.is_done() {
                stepper.advance_world(&mut source).expect("advance");
                let d = policy.decide(&stepper.observe());
                hashes.push(stepper.apply(d).expect("apply").state_hash);
            }
            match &reference {
                None => reference = Some(hashes),
                Some(expected) => assert_eq!(
                    &hashes, expected,
                    "state hashes diverged under ({mode:?}, {threads} threads)"
                ),
            }
        }
    }
}
