//! End-to-end pins of the `geoplace-serve` CLI contract.
//!
//! The binary's flag handling is strict by design: a bad `--trace` file
//! must kill the process with exit code 2 and a message naming the
//! offense *before* the session starts, and contradictory flags must
//! never silently pick a winner. These tests spawn the real binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_geoplace-serve");

/// Runs the binary with `args`, feeding `stdin`, and returns
/// (exit code, stdout, stderr).
fn run(args: &[&str], stdin: &str) -> (i32, String, String) {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn geoplace-serve");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let output = child.wait_with_output().expect("wait for geoplace-serve");
    (
        output.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// A scratch path under the cargo-managed test temp dir.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create target tmpdir");
    dir.join(name)
}

#[test]
fn a_missing_trace_file_exits_2_naming_the_path() {
    let (code, _, stderr) = run(
        &[
            "--bench",
            "--slots",
            "2",
            "--trace",
            "/definitely/not/here.csv",
        ],
        "",
    );
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(
        stderr.contains("/definitely/not/here.csv"),
        "stderr must name the path: {stderr}"
    );
}

#[test]
fn a_malformed_trace_row_exits_2_naming_its_line() {
    let path = scratch("malformed_trace.csv");
    std::fs::write(
        &path,
        "slot,vm,memory_gb,lifetime_slots,profile,trace_seed,peer,mb_to_peer,mb_from_peer\n\
         1,0,4.0,8,web,11,,,\n\
         1,1,-2.0,8,batch,12,,,\n",
    )
    .expect("write malformed trace");
    let (code, _, stderr) = run(
        &[
            "--bench",
            "--slots",
            "2",
            "--trace",
            path.to_str().expect("utf-8 path"),
        ],
        "",
    );
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(
        stderr.contains("line 3") && stderr.contains("memory_gb"),
        "stderr must name the offending line: {stderr}"
    );
}

#[test]
fn trace_and_external_are_mutually_exclusive() {
    let path = scratch("unused_trace.csv");
    std::fs::write(
        &path,
        "slot,vm,memory_gb,lifetime_slots,profile,trace_seed,peer,mb_to_peer,mb_from_peer\n",
    )
    .expect("write trace");
    let (code, _, stderr) = run(
        &[
            "--bench",
            "--external",
            "--trace",
            path.to_str().expect("utf-8 path"),
        ],
        "",
    );
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("mutually exclusive"), "stderr: {stderr}");
}

#[test]
fn a_valid_trace_serves_a_session_to_completion() {
    let path = scratch("valid_trace.csv");
    std::fs::write(
        &path,
        "slot,vm,memory_gb,lifetime_slots,profile,trace_seed,peer,mb_to_peer,mb_from_peer\n\
         1,0,4.0,8,web,11,,,\n\
         1,1,2.0,8,batch,12,0,6.5,1.5\n",
    )
    .expect("write trace");
    // Slot 0 is the bootstrap boundary; the slot-1 rows arrive on the
    // second advance.
    let (code, stdout, stderr) = run(
        &[
            "--bench",
            "--seed",
            "42",
            "--slots",
            "2",
            "--trace",
            path.to_str().expect("utf-8 path"),
        ],
        "{\"cmd\":\"advance\"}\n{\"cmd\":\"decide\"}\n\
         {\"cmd\":\"advance\"}\n{\"cmd\":\"decide\"}\n{\"cmd\":\"shutdown\"}\n",
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "stdout: {stdout}");
    assert!(
        lines.iter().all(|l| l.contains("\"ok\":true")),
        "stdout: {stdout}"
    );
    assert!(lines[2].contains("\"arrived\":2"), "stdout: {stdout}");
    assert!(lines[4].contains("digest"), "stdout: {stdout}");
}
