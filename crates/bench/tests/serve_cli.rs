//! End-to-end pins of the `geoplace-serve` CLI contract.
//!
//! The binary's flag handling is strict by design: a bad `--trace` file
//! must kill the process with exit code 2 and a message naming the
//! offense *before* the session starts, and contradictory flags must
//! never silently pick a winner. These tests spawn the real binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_geoplace-serve");

/// Runs the binary with `args`, feeding `stdin`, and returns
/// (exit code, stdout, stderr).
fn run(args: &[&str], stdin: &str) -> (i32, String, String) {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn geoplace-serve");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let output = child.wait_with_output().expect("wait for geoplace-serve");
    (
        output.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// A scratch path under the cargo-managed test temp dir.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create target tmpdir");
    dir.join(name)
}

#[test]
fn a_missing_trace_file_exits_2_naming_the_path() {
    let (code, _, stderr) = run(
        &[
            "--bench",
            "--slots",
            "2",
            "--trace",
            "/definitely/not/here.csv",
        ],
        "",
    );
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(
        stderr.contains("/definitely/not/here.csv"),
        "stderr must name the path: {stderr}"
    );
}

#[test]
fn a_malformed_trace_row_exits_2_naming_its_line() {
    let path = scratch("malformed_trace.csv");
    std::fs::write(
        &path,
        "slot,vm,memory_gb,lifetime_slots,profile,trace_seed,peer,mb_to_peer,mb_from_peer\n\
         1,0,4.0,8,web,11,,,\n\
         1,1,-2.0,8,batch,12,,,\n",
    )
    .expect("write malformed trace");
    let (code, _, stderr) = run(
        &[
            "--bench",
            "--slots",
            "2",
            "--trace",
            path.to_str().expect("utf-8 path"),
        ],
        "",
    );
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(
        stderr.contains("line 3") && stderr.contains("memory_gb"),
        "stderr must name the offending line: {stderr}"
    );
}

#[test]
fn trace_and_external_are_mutually_exclusive() {
    let path = scratch("unused_trace.csv");
    std::fs::write(
        &path,
        "slot,vm,memory_gb,lifetime_slots,profile,trace_seed,peer,mb_to_peer,mb_from_peer\n",
    )
    .expect("write trace");
    let (code, _, stderr) = run(
        &[
            "--bench",
            "--external",
            "--trace",
            path.to_str().expect("utf-8 path"),
        ],
        "",
    );
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("mutually exclusive"), "stderr: {stderr}");
}

#[test]
fn a_malformed_checkpoint_every_exits_2_naming_the_flag() {
    let dir = scratch("ckpt_malformed_every");
    let (code, _, stderr) = run(
        &[
            "--bench",
            "--slots",
            "2",
            "--checkpoint-every",
            "banana",
            "--checkpoint-dir",
            dir.to_str().expect("utf-8 path"),
        ],
        "",
    );
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(
        stderr.contains("--checkpoint-every"),
        "stderr must name the flag: {stderr}"
    );

    let (code, _, stderr) = run(
        &[
            "--bench",
            "--slots",
            "2",
            "--checkpoint-every",
            "0",
            "--checkpoint-dir",
            dir.to_str().expect("utf-8 path"),
        ],
        "",
    );
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(
        stderr.contains("--checkpoint-every") && stderr.contains("at least 1"),
        "stderr must reject the zero interval: {stderr}"
    );
}

#[test]
fn a_lone_checkpoint_flag_exits_2_naming_its_partner() {
    let (code, _, stderr) = run(&["--bench", "--slots", "2", "--checkpoint-every", "2"], "");
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("--checkpoint-dir"), "stderr: {stderr}");

    let (code, _, stderr) = run(
        &["--bench", "--slots", "2", "--checkpoint-dir", "/tmp/x"],
        "",
    );
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("--checkpoint-every"), "stderr: {stderr}");
}

#[test]
fn an_unwritable_checkpoint_dir_exits_2_naming_it() {
    let (code, _, stderr) = run(
        &[
            "--bench",
            "--slots",
            "2",
            "--checkpoint-every",
            "1",
            "--checkpoint-dir",
            "/proc/definitely/not/writable",
        ],
        "",
    );
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(
        stderr.contains("/proc/definitely/not/writable"),
        "stderr must name the directory: {stderr}"
    );
}

/// The full CLI checkpoint loop: a session with `--checkpoint-every`
/// drops a snapshot and reports its path in-band; a second process
/// restores that file and picks up at the saved slot; a restore aimed
/// at a missing file is a structured error that leaves the second
/// session running (exit 0 via clean shutdown).
#[test]
fn auto_checkpoints_restore_across_processes() {
    let dir = scratch("ckpt_cli_roundtrip");
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let (code, stdout, stderr) = run(
        &[
            "--bench",
            "--seed",
            "42",
            "--slots",
            "4",
            "--checkpoint-every",
            "2",
            "--checkpoint-dir",
            dir.to_str().expect("utf-8 path"),
        ],
        "{\"cmd\":\"advance\"}\n{\"cmd\":\"decide\"}\n\
         {\"cmd\":\"advance\"}\n{\"cmd\":\"decide\"}\n{\"cmd\":\"shutdown\"}\n",
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    let ckpt = dir.join("ckpt_slot00002.gpck");
    assert!(ckpt.exists(), "stdout: {stdout}");
    assert!(
        stdout.contains("ckpt_slot00002.gpck"),
        "the decide response must report the written path: {stdout}"
    );

    let restore = format!(
        "{{\"cmd\":\"restore\",\"path\":\"/definitely/not/here.gpck\"}}\n\
         {{\"cmd\":\"restore\",\"path\":\"{}\"}}\n{{\"cmd\":\"shutdown\"}}\n",
        ckpt.display()
    );
    let (code, stdout, stderr) = run(&["--bench", "--seed", "42", "--slots", "4"], &restore);
    assert_eq!(code, 0, "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "stdout: {stdout}");
    assert!(
        lines[0].contains("\"ok\":false") && lines[0].contains("/definitely/not/here.gpck"),
        "a missing snapshot must be a structured error naming the path: {stdout}"
    );
    assert!(
        lines[1].contains("\"ok\":true") && lines[1].contains("\"slot\":2"),
        "the restore must land on the saved slot: {stdout}"
    );
    assert!(lines[2].contains("\"ok\":true"), "stdout: {stdout}");
}

#[test]
fn a_valid_trace_serves_a_session_to_completion() {
    let path = scratch("valid_trace.csv");
    std::fs::write(
        &path,
        "slot,vm,memory_gb,lifetime_slots,profile,trace_seed,peer,mb_to_peer,mb_from_peer\n\
         1,0,4.0,8,web,11,,,\n\
         1,1,2.0,8,batch,12,0,6.5,1.5\n",
    )
    .expect("write trace");
    // Slot 0 is the bootstrap boundary; the slot-1 rows arrive on the
    // second advance.
    let (code, stdout, stderr) = run(
        &[
            "--bench",
            "--seed",
            "42",
            "--slots",
            "2",
            "--trace",
            path.to_str().expect("utf-8 path"),
        ],
        "{\"cmd\":\"advance\"}\n{\"cmd\":\"decide\"}\n\
         {\"cmd\":\"advance\"}\n{\"cmd\":\"decide\"}\n{\"cmd\":\"shutdown\"}\n",
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "stdout: {stdout}");
    assert!(
        lines.iter().all(|l| l.contains("\"ok\":true")),
        "stdout: {stdout}"
    );
    assert!(lines[2].contains("\"arrived\":2"), "stdout: {stdout}");
    assert!(lines[4].contains("digest"), "stdout: {stdout}");
}
