//! Figure renderers: turn a set of [`SimulationReport`]s into the ASCII
//! equivalents of the paper's Figures 1–6.

use crate::table::{downsample, render_table, saving_vs, sparkline};
use geoplace_dcsim::metrics::{Histogram, SimulationReport};

/// Fig. 1 — weekly operational cost, normalized by the worst policy.
pub fn fig1(reports: &[SimulationReport]) -> String {
    let costs: Vec<f64> = reports.iter().map(|r| r.totals().cost_eur).collect();
    let worst = costs.iter().cloned().fold(0.0, f64::max);
    let proposed = costs[position(reports, "Proposed")];
    let mut rows = Vec::new();
    for (report, &cost) in reports.iter().zip(costs.iter()) {
        rows.push(vec![
            report.policy.clone(),
            format!("{cost:.2}"),
            format!("{:.3}", if worst > 0.0 { cost / worst } else { 0.0 }),
            saving_vs(proposed, cost),
            sparkline(&downsample(&report.hourly_cost(), 56)),
        ]);
    }
    let mut out = String::from("Fig. 1 — Normalized operational cost (one week)\n");
    out.push_str(&render_table(
        &[
            "policy",
            "cost EUR",
            "normalized",
            "Proposed saves",
            "hourly shape",
        ],
        &rows,
    ));
    out
}

/// Fig. 2 — hourly energy consumed by the DCs and weekly totals in GJ.
pub fn fig2(reports: &[SimulationReport]) -> String {
    let mut rows = Vec::new();
    for report in reports {
        let totals = report.totals();
        rows.push(vec![
            report.policy.clone(),
            format!("{:.2}", totals.energy_gj),
            format!("{:.2}", totals.grid_energy_gj),
            format!("{:.1}", totals.mean_active_servers),
            sparkline(&downsample(&report.hourly_energy_gj(), 56)),
        ]);
    }
    let mut out = String::from("Fig. 2 — Energy consumed by DCs (one week)\n");
    out.push_str(&render_table(
        &[
            "policy",
            "total GJ",
            "grid GJ",
            "mean servers on",
            "hourly shape",
        ],
        &rows,
    ));
    out
}

/// Fig. 3 — probability distribution of the normalized response time.
pub fn fig3(reports: &[SimulationReport]) -> String {
    // Normalize by the worst-case sample across all policies, as the paper
    // does ("normalized with respect to the worst-case value among the
    // methods").
    let worst = reports
        .iter()
        .flat_map(|r| r.response_samples.iter().copied())
        .fold(0.0f64, f64::max);
    let mut out = String::from("Fig. 3 — PDF of normalized response time (one week)\n");
    let bins = 10;
    let mut rows = Vec::new();
    for report in reports {
        let normalized: Vec<f64> = report
            .response_samples
            .iter()
            .map(|&s| if worst > 0.0 { s / worst } else { 0.0 })
            .collect();
        let histogram = Histogram::from_samples(&normalized, bins, 1.0);
        let pdf = histogram.pdf();
        let mean = if normalized.is_empty() {
            0.0
        } else {
            normalized.iter().sum::<f64>() / normalized.len() as f64
        };
        let peak = normalized.iter().cloned().fold(0.0, f64::max);
        rows.push(vec![
            report.policy.clone(),
            format!("{mean:.3}"),
            format!("{peak:.3}"),
            pdf.iter()
                .map(|p| format!("{p:.2}"))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    out.push_str(&render_table(
        &["policy", "mean", "worst", "pdf bins 0.0..1.0 (10 bins)"],
        &rows,
    ));
    out
}

/// Fig. 4 — total cost, energy and performance summary.
pub fn fig4(reports: &[SimulationReport]) -> String {
    let worst_cost = reports
        .iter()
        .map(|r| r.totals().cost_eur)
        .fold(0.0, f64::max);
    let worst_energy = reports
        .iter()
        .map(|r| r.totals().energy_gj)
        .fold(0.0, f64::max);
    let worst_response = reports
        .iter()
        .map(|r| r.totals().worst_response_s)
        .fold(0.0, f64::max);
    let mut rows = Vec::new();
    for report in reports {
        let totals = report.totals();
        rows.push(vec![
            report.policy.clone(),
            normalized_cell(totals.cost_eur, worst_cost),
            normalized_cell(totals.energy_gj, worst_energy),
            normalized_cell(totals.worst_response_s, worst_response),
        ]);
    }
    let mut out = String::from("Fig. 4 — Totals (normalized by worst; lower is better)\n");
    out.push_str(&render_table(
        &[
            "policy",
            "operational cost",
            "energy",
            "response time (worst)",
        ],
        &rows,
    ));
    out
}

/// Fig. 5 — cost–performance trade-off (one point per policy).
pub fn fig5(reports: &[SimulationReport]) -> String {
    scatter(
        reports,
        "Fig. 5 — Cost-Performance trade-off",
        "cost EUR",
        |t| t.cost_eur,
        "worst response s",
        |t| t.worst_response_s,
    )
}

/// Fig. 6 — energy–performance trade-off (one point per policy).
pub fn fig6(reports: &[SimulationReport]) -> String {
    scatter(
        reports,
        "Fig. 6 — Energy-Performance trade-off",
        "energy GJ",
        |t| t.energy_gj,
        "worst response s",
        |t| t.worst_response_s,
    )
}

fn scatter(
    reports: &[SimulationReport],
    title: &str,
    x_name: &str,
    x: impl Fn(&geoplace_dcsim::metrics::Totals) -> f64,
    y_name: &str,
    y: impl Fn(&geoplace_dcsim::metrics::Totals) -> f64,
) -> String {
    let mut rows = Vec::new();
    let proposed = reports[position(reports, "Proposed")].totals();
    for report in reports {
        let totals = report.totals();
        rows.push(vec![
            report.policy.clone(),
            format!("{:.2}", x(&totals)),
            format!("{:.2}", y(&totals)),
            saving_vs(x(&proposed), x(&totals)),
            saving_vs(y(&proposed), y(&totals)),
        ]);
    }
    let mut out = format!("{title}\n");
    out.push_str(&render_table(
        &[
            "policy",
            x_name,
            y_name,
            "Proposed saves (x)",
            "Proposed saves (y)",
        ],
        &rows,
    ));
    out
}

fn normalized_cell(value: f64, worst: f64) -> String {
    if worst > 0.0 {
        format!("{:.3}", value / worst)
    } else {
        "0.000".to_string()
    }
}

fn position(reports: &[SimulationReport], name: &str) -> usize {
    reports.iter().position(|r| r.policy == name).unwrap_or(0)
}

/// All six figures, in order.
pub fn all_figures(reports: &[SimulationReport]) -> String {
    let mut out = String::new();
    for section in [
        fig1(reports),
        fig2(reports),
        fig3(reports),
        fig4(reports),
        fig5(reports),
        fig6(reports),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}

/// Migration/QoS diagnostics appended by `repro_all`.
pub fn migration_summary(reports: &[SimulationReport]) -> String {
    let mut rows = Vec::new();
    for report in reports {
        let totals = report.totals();
        rows.push(vec![
            report.policy.clone(),
            totals.migrations.to_string(),
            format!("{:.0}", totals.migration_volume_gb),
            totals.migration_overruns.to_string(),
        ]);
    }
    let mut out = String::from("Migrations (volume in GB; overruns = QoS budget blown)\n");
    out.push_str(&render_table(
        &["policy", "count", "volume", "overruns"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoplace_dcsim::metrics::HourlyRecord;

    fn fake(name: &str, cost: f64, energy_gj: f64, response: f64) -> SimulationReport {
        let mut report = SimulationReport::new(name, 3);
        report.push_hour(HourlyRecord {
            cost_eur: cost,
            total_energy_j: energy_gj * 1e9,
            response_worst_s: response,
            ..HourlyRecord::default()
        });
        report.response_samples = vec![response, response / 2.0];
        report
    }

    fn reports() -> Vec<SimulationReport> {
        vec![
            fake("Proposed", 10.0, 5.0, 8.0),
            fake("Ener-aware", 22.0, 4.8, 9.0),
            fake("Pri-aware", 13.0, 6.0, 9.2),
            fake("Net-aware", 15.0, 6.2, 7.8),
        ]
    }

    #[test]
    fn fig1_normalizes_by_worst() {
        let out = fig1(&reports());
        assert!(out.contains("1.000"), "worst policy must be 1.000:\n{out}");
        assert!(out.contains("Proposed"));
    }

    #[test]
    fn fig3_pdf_covers_policies() {
        let out = fig3(&reports());
        for name in ["Proposed", "Ener-aware", "Pri-aware", "Net-aware"] {
            assert!(out.contains(name), "{name} missing:\n{out}");
        }
    }

    #[test]
    fn all_figures_renders_six_sections() {
        let out = all_figures(&reports());
        for fig in ["Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6"] {
            assert!(out.contains(fig), "{fig} missing");
        }
    }

    #[test]
    fn migration_summary_renders() {
        let out = migration_summary(&reports());
        assert!(out.contains("overruns"));
    }
}
