//! Minimal line-oriented JSON for the `geoplace-serve` protocol.
//!
//! The workspace vendors only a marker stub of serde, so the service
//! protocol hand-rolls the subset of JSON it needs: one value per line,
//! objects with string keys, arrays, finite numbers, strings with the
//! standard escapes, booleans and null. Parsing is a straightforward
//! recursive descent over bytes; rendering is compact (no whitespace)
//! so one response is always one line.
//!
//! Because the parser sits on the untrusted side of a long-running
//! service, nesting is capped at [`MAX_DEPTH`] levels: unbounded
//! recursion on a hostile `[[[[…` line would overflow the stack and
//! kill the session, which the serve protocol promises never happens.

/// A parsed JSON value. Objects preserve insertion order so rendered
/// responses are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string with escapes already resolved.
    String(String),
    /// `[ ... ]`.
    Array(Vec<Value>),
    /// `{ ... }`, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error (the protocol is one value per line).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!(
                "trailing characters after the JSON value at byte {}",
                parser.pos
            ));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, rejecting
    /// fractional and out-of-range values.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact (single-line) rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => render_number(*n, out),
            Value::String(s) => render_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(f64::from(n))
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

/// Builds an insertion-ordered object from `(key, value)` pairs.
pub fn object(members: Vec<(&str, Value)>) -> Value {
    Value::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional degradation.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's shortest-roundtrip float formatting is valid JSON.
        out.push_str(&format!("{n}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deepest permitted array/object nesting — far beyond any protocol
/// shape, small enough that recursion can never threaten the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current array/object nesting, checked against [`MAX_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, String> {
        self.descend()?;
        let items = self.array_body();
        self.depth -= 1;
        items
    }

    fn array_body(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.descend()?;
        let members = self.object_body();
        self.depth -= 1;
        members
    }

    fn object_body(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    let combined = 0x10000
                                        + ((first - 0xD800) << 10)
                                        + (second.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            let c = c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.pos)
                            })?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Strings are UTF-8 already; copy whole chars.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let Some(c) = text.chars().next() else {
                        return Err("unterminated string".into());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number bytes at {start}"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number {text:?} at byte {start}"));
        }
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_protocol_shapes() -> Result<(), String> {
        for text in [
            r#"{"cmd":"advance"}"#,
            r#"{"cmd":"vm_arrive","memory_gb":4.5,"lifetime_slots":8,"profile":"web"}"#,
            r#"{"ok":true,"arrived":[3,4],"departed":[],"note":null}"#,
            r#"[1,-2.5,1e3,"x\n\"y\""]"#,
        ] {
            let value = Value::parse(text)?;
            let rendered = value.render();
            assert_eq!(Value::parse(&rendered)?, value, "{text}");
        }
        Ok(())
    }

    #[test]
    fn accessors_pull_typed_members() -> Result<(), String> {
        let v = Value::parse(r#"{"cmd":"decide","n":7,"deep":{"ok":false},"xs":[1,2]}"#)?;
        assert_eq!(v.get("cmd").and_then(Value::as_str), Some("decide"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(
            v.get("deep")
                .and_then(|d| d.get("ok"))
                .and_then(Value::as_bool),
            Some(false)
        );
        assert_eq!(
            v.get("xs").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("absent"), None);
        Ok(())
    }

    #[test]
    fn rejects_malformed_lines() {
        for text in [
            "",
            "{",
            r#"{"cmd" "advance"}"#,
            r#"{"cmd":}"#,
            "[1,2",
            r#""unterminated"#,
            "1e999",
            "nul",
            r#"{"a":1} trailing"#,
            r#""bad \q escape""#,
        ] {
            assert!(Value::parse(text).is_err(), "{text:?} must not parse");
        }
    }

    #[test]
    fn escapes_and_unicode_survive() -> Result<(), String> {
        let v = Value::parse(r#""tab\t quote\" slash\/ A 😀""#)?;
        assert_eq!(v.as_str(), Some("tab\t quote\" slash/ A \u{1F600}"));
        let rendered = Value::String("a\"b\\c\nd\u{1}".into()).render();
        assert_eq!(rendered, "\"a\\\"b\\\\c\\nd\\u0001\"");
        Ok(())
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(Value::Number(3.0).render(), "3");
        assert_eq!(Value::Number(-0.125).render(), "-0.125");
        assert_eq!(Value::Number(f64::NAN).render(), "null");
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() -> Result<(), String> {
        // Within the cap: parses fine.
        let shallow = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        Value::parse(&shallow)?;
        // One past the cap: a structured error.
        let edge = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let e = Value::parse(&edge).err().ok_or("depth cap not enforced")?;
        assert!(e.contains("nesting"), "{e}");
        // Absurdly deep (would previously recurse once per byte and
        // overflow the stack): still just an error, session-safe.
        assert!(Value::parse(&"[".repeat(200_000)).is_err());
        assert!(Value::parse(&r#"{"a":"#.repeat(100_000)).is_err());
        Ok(())
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Number(7.0).as_u64(), Some(7));
        assert_eq!(Value::Number(7.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
    }
}
