//! Reproduction harness: scenario builders, policy runners and table
//! rendering shared by the `repro_*` binaries and the Criterion benches.
//!
//! One binary per table/figure of the paper:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `repro_table1` | Table I — DC fleet and energy sources |
//! | `repro_fig1` | Fig. 1 — normalized weekly operational cost |
//! | `repro_fig2` | Fig. 2 — hourly/total DC energy |
//! | `repro_fig3` | Fig. 3 — response-time PDF |
//! | `repro_fig4` | Fig. 4 — totals summary |
//! | `repro_fig5` | Fig. 5 — cost–performance trade-off |
//! | `repro_fig6` | Fig. 6 — energy–performance trade-off |
//! | `repro_all` | every figure in one run |
//! | `repro_alpha_sweep` | ablation: Eq. 5's α knob |
//! | `repro_qos_sweep` | ablation: Algorithm 2's QoS budget |
//! | `repro_green_ablation` | ablation: green-controller arbitrage |
//!
//! Plus the scaling/CI harness: `stress_smoke` (≈10k-VM sparse-pipeline
//! run), `ci_determinism` (same-seed double-run gate),
//! `diag_pipeline_agreement` (dense↔sparse paired-mean comparison) and
//! `diag_stress_profile` (slot-step wall-time breakdown).
//!
//! All binaries accept `--paper` (Table I scale), `--bench` (one-day
//! mini scale) and `--stress` (≈10k-VM one-day scale); the default is
//! the 1/5-fleet weekly "repro" scale. They also accept `--seed N` and
//! `--scenario NAME` (a preset from the [`geoplace_scenarios`]
//! registry) — all parsed by one [`scenario::CliArgs`], which rejects
//! anything outside each binary's declared flag vocabulary with exit
//! code 2. The `scenario_matrix` binary runs every preset × every
//! policy and emits one canonical report digest per cell; `--quick
//! --check` is the CI golden-regression gate.
//!
//! The `geoplace-serve` binary turns the stepper lifecycle into a
//! long-running placement service over line-delimited JSON on
//! stdin/stdout — see [`serve`] for the protocol and [`json`] for the
//! hand-rolled (serde-free) JSON layer beneath it.

pub mod figures;
pub mod json;
pub mod scenario;
pub mod serve;
pub mod table;

pub use scenario::{
    check_unknown_flags, enforce_flags_or_exit, flag_from_args, golden_row, parse_seed,
    proposed_config_for, quick_matrix_config, run_all, run_policy, run_policy_threads,
    run_proposed_with, seed_from_args, stress_proposed_config, CliArgs, PolicyKind, Scale,
    BASE_FLAGS, QUICK_MATRIX_SEEDS, QUICK_MATRIX_SLOTS,
};
