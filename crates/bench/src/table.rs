//! Plain-text table and series rendering for the reproduction binaries.
//!
//! The paper's figures are line/bar/PDF plots; the binaries print the same
//! data as aligned ASCII tables plus compact sparkline-style series so the
//! *shape* (who wins, by how much, where crossovers fall) is readable in a
//! terminal and diffable in EXPERIMENTS.md.

/// Renders a header + rows table with right-aligned numeric columns.
///
/// # Examples
///
/// ```
/// use geoplace_bench::table::render_table;
/// let out = render_table(
///     &["policy", "cost"],
///     &[vec!["Proposed".into(), "1.00".into()],
///       vec!["Pri-aware".into(), "1.33".into()]],
/// );
/// assert!(out.contains("Proposed"));
/// assert!(out.lines().count() >= 4);
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in header.iter().enumerate() {
        out.push_str(&format!("| {:<width$} ", h, width = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            if i == 0 {
                out.push_str(&format!("| {:<width$} ", cell, width = widths[i]));
            } else {
                out.push_str(&format!("| {:>width$} ", cell, width = widths[i]));
            }
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Renders a numeric series as a one-line unicode sparkline.
///
/// # Examples
///
/// ```
/// use geoplace_bench::table::sparkline;
/// let s = sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// Downsamples a series to at most `buckets` points by averaging.
pub fn downsample(values: &[f64], buckets: usize) -> Vec<f64> {
    if values.is_empty() || buckets == 0 {
        return Vec::new();
    }
    if values.len() <= buckets {
        return values.to_vec();
    }
    let chunk = values.len().div_ceil(buckets);
    values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Formats a ratio as a percentage-saving string against a reference
/// (positive = this value is lower/better than the reference).
pub fn saving_vs(value: f64, reference: f64) -> String {
    if reference <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (1.0 - value / reference) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = render_table(
            &["a", "bbbb"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(
            lines.iter().all(|l| l.len() == lines[0].len()),
            "ragged table:\n{out}"
        );
    }

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn sparkline_constant_series() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
    }

    #[test]
    fn downsample_preserves_mean_roughly() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let down = downsample(&values, 10);
        assert_eq!(down.len(), 10);
        let mean_full: f64 = values.iter().sum::<f64>() / 100.0;
        let mean_down: f64 = down.iter().sum::<f64>() / down.len() as f64;
        assert!((mean_full - mean_down).abs() < 1.0);
    }

    #[test]
    fn downsample_short_series_passthrough() {
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
        assert!(downsample(&[], 5).is_empty());
    }

    #[test]
    fn savings_formatting() {
        assert_eq!(saving_vs(0.45, 1.0), "+55.0%");
        assert_eq!(saving_vs(1.2, 1.0), "-20.0%");
        assert_eq!(saving_vs(1.0, 0.0), "n/a");
    }
}
