//! Reproduces Fig. 2 of the paper. Run with `--paper` for Table I scale.

use geoplace_bench::{figures, run_all, CliArgs};

fn main() {
    let config = CliArgs::parse().config();
    let reports = run_all(&config);
    print!("{}", figures::fig2(&reports));
}
