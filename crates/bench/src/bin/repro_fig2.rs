//! Reproduces Fig. 2 of the paper. Run with `--paper` for Table I scale.

use geoplace_bench::{figures, run_all, Scale};

fn main() {
    let config = Scale::from_args().config(42);
    let reports = run_all(&config);
    print!("{}", figures::fig2(&reports));
}
