//! The cross-world golden-regression matrix: every registered scenario
//! preset × all four policies, one canonical report digest per cell.
//!
//! Modes:
//!
//! * default — each preset at the selected scale (`--bench` default so
//!   a bare invocation finishes in seconds; `--paper`/`--stress` work
//!   too) under `--seed` (default 42), printing a totals table and the
//!   digest of every cell;
//! * `--quick` — the CI shape: every preset at the shared quick-matrix
//!   scale (bench fleet, 12 slots) for both golden seeds (41, 42);
//! * `--check` — after running, diff the produced digests against the
//!   committed goldens (`crates/bench/tests/golden/digests.tsv`) and
//!   exit 1 on any mismatch or missing row;
//! * `--update` — rewrite the golden file from this run (quick mode
//!   only, so the committed goldens stay the CI shape).
//!
//! `--scenario NAME` narrows the matrix to one preset's rows (all
//! other flags compose); `--seed` picks the seed outside `--quick`
//! (inside it the golden seeds are pinned and an explicit `--seed` is
//! refused rather than ignored).
//!
//! Every cell is executed twice — once on 1 worker thread, once on 2 —
//! and the two reports must digest identically: the executor's
//! determinism contract, enforced across every world in the library.

use geoplace_bench::scenario::{
    golden_digests_path, golden_row, parse_golden_file, quick_matrix_config, render_golden_file,
    run_policy_threads, CliArgs, PolicyKind, QUICK_MATRIX_SEEDS,
};
use geoplace_dcsim::config::ScenarioConfig;

struct Cell {
    scenario: &'static str,
    policy: PolicyKind,
    seed: u64,
    digest: String,
    cost_eur: f64,
    energy_gj: f64,
    worst_response_s: f64,
    migrations: u64,
}

/// Runs one cell at 1 and 2 worker threads, asserting digest equality.
fn run_cell(
    scenario: &'static str,
    config: &ScenarioConfig,
    policy: PolicyKind,
    seed: u64,
) -> Cell {
    let report = run_policy_threads(config, policy, 1);
    let twin = run_policy_threads(config, policy, 2);
    assert_eq!(
        report.digest(),
        twin.digest(),
        "{scenario}/{}/{seed}: report differs between 1 and 2 worker threads",
        policy.name()
    );
    let totals = report.totals();
    Cell {
        scenario,
        policy,
        seed,
        digest: report.digest(),
        cost_eur: totals.cost_eur,
        energy_gj: totals.energy_gj,
        worst_response_s: totals.worst_response_s,
        migrations: totals.migrations,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let update = std::env::args().any(|a| a == "--update");
    let cli = CliArgs::parse_strict(&[("--quick", false), ("--check", false), ("--update", false)]);

    // `--scenario NAME` narrows the matrix to that preset's rows; a
    // bare invocation runs the whole registry.
    let scenario_selected = std::env::args().any(|a| a == "--scenario");
    let registry: Vec<_> = geoplace_scenarios::registry()
        .into_iter()
        .filter(|spec| !scenario_selected || spec.name == cli.world.name)
        .collect();
    let seeds: Vec<u64> = if quick {
        // The quick matrix *is* the golden shape — its seeds are pinned,
        // so an explicit --seed would be silently ignored; refuse it.
        if std::env::args().any(|a| a == "--seed") {
            eprintln!(
                "error: --quick pins the golden seeds {QUICK_MATRIX_SEEDS:?};                  drop --seed or run without --quick"
            );
            std::process::exit(2);
        }
        QUICK_MATRIX_SEEDS.to_vec()
    } else {
        vec![cli.seed]
    };

    let mut cells: Vec<Cell> = Vec::new();
    for spec in &registry {
        for &seed in &seeds {
            let config = if quick {
                quick_matrix_config(spec, seed)
            } else {
                let scale =
                    if std::env::args().any(|a| ["--paper", "--stress"].contains(&a.as_str())) {
                        cli.scale
                    } else {
                        // Bare invocations default to the bench scale: a full
                        // 24-cell repro-scale matrix is a coffee-break run,
                        // not a smoke check.
                        geoplace_bench::Scale::Bench
                    };
                spec.apply(scale.config(seed))
            };
            eprintln!(
                "running {:<16} seed {seed}: {} slots, ~{:.0} VMs, {} events…",
                spec.name,
                config.horizon_slots,
                config.fleet.arrivals.expected_population(),
                config.timeline.events().len()
            );
            for policy in PolicyKind::ALL {
                cells.push(run_cell(spec.name, &config, policy, seed));
            }
        }
    }

    println!("scenario         policy      seed  cost EUR    energy GJ  worst rt s  migr  digest");
    for cell in &cells {
        println!(
            "{:<16} {:<10} {:>5}  {:>9.2}  {:>10.3}  {:>10.1}  {:>4}  {}",
            cell.scenario,
            cell.policy.name(),
            cell.seed,
            cell.cost_eur,
            cell.energy_gj,
            cell.worst_response_s,
            cell.migrations,
            cell.digest
        );
    }

    if update {
        assert!(
            quick,
            "--update only writes the quick-matrix shape (run with --quick)"
        );
        // A narrowed matrix must never rewrite the file: it would
        // silently drop every other preset's committed rows.
        assert!(
            !scenario_selected,
            "--update rewrites the whole golden file; drop --scenario"
        );
        let rows: Vec<String> = cells
            .iter()
            .map(|cell| golden_row(cell.scenario, cell.policy, cell.seed, &cell.digest))
            .collect();
        std::fs::write(golden_digests_path(), render_golden_file(&rows))
            .expect("write golden digests");
        println!(
            "golden digests written to {}",
            golden_digests_path().display()
        );
    }

    if check {
        assert!(
            quick,
            "--check compares against the committed quick-matrix goldens (run with --quick)"
        );
        let committed = std::fs::read_to_string(golden_digests_path())
            .unwrap_or_else(|e| panic!("read {}: {e}", golden_digests_path().display()));
        let golden = parse_golden_file(&committed);
        let mut failures = 0usize;
        for cell in &cells {
            let key = format!("{}\t{}\t{}", cell.scenario, cell.policy.name(), cell.seed);
            match golden.get(&key) {
                Some(expected) if *expected == cell.digest => {}
                Some(expected) => {
                    eprintln!(
                        "MISMATCH {key}: committed {expected}, recomputed {}",
                        cell.digest
                    );
                    failures += 1;
                }
                None => {
                    eprintln!("MISSING golden row for {key}");
                    failures += 1;
                }
            }
        }
        if failures > 0 {
            eprintln!(
                "{failures} golden mismatches — if the change is intentional, regenerate \
                 with `cargo run --release --bin scenario_matrix -- --quick --update`"
            );
            std::process::exit(1);
        }
        println!("all {} cells match the committed goldens", cells.len());
    }
}
