//! Ablation A3: the green controller's low-price arbitrage charging
//! (Sect. IV-B.3: "during the low price periods, we charge the battery by
//! grid energy").

use geoplace_bench::table::render_table;
use geoplace_bench::{proposed_config_for, CliArgs};
use geoplace_core::ProposedPolicy;
use geoplace_dcsim::engine::{Scenario, Simulator};
use geoplace_energy::green::GreenController;

fn main() {
    let config = CliArgs::parse().config();
    let mut rows = Vec::new();
    for (label, disable) in [("arbitrage ON (paper)", false), ("arbitrage OFF", true)] {
        let scenario = Scenario::build(&config).expect("valid config");
        let mut policy = ProposedPolicy::new(proposed_config_for(&config));
        let report = Simulator::new(scenario)
            .with_green_controller(GreenController {
                disable_arbitrage: disable,
            })
            .run(&mut policy);
        let totals = report.totals();
        let battery: f64 = report.hourly.iter().map(|h| h.battery_discharge_j).sum();
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", totals.cost_eur),
            format!("{:.2}", totals.grid_energy_gj),
            format!("{:.2}", battery / 1e9),
        ]);
    }
    println!("Ablation A3 — green-controller battery arbitrage");
    print!(
        "{}",
        render_table(&["variant", "cost EUR", "grid GJ", "battery out GJ"], &rows)
    );
}
