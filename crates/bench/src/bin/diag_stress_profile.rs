//! Diagnostic: wall-time breakdown of one stress-scale slot step —
//! windows materialization, arena build, sparse correlation graph,
//! traffic CSR, and the force layout. The numbers that justify (or
//! indict) every knob in [`geoplace_workload::sparsity::SparsityConfig`].

use geoplace_bench::{CliArgs, Scale};
use geoplace_dcsim::engine::Scenario;
use geoplace_types::time::TimeSlot;
use geoplace_types::VmArena;
use geoplace_workload::cpucorr::CpuCorrelationMatrix;
use std::time::Instant;

fn main() {
    let cli = CliArgs::parse();
    let config = cli.world.apply(Scale::Stress.config(cli.seed));
    let scenario = Scenario::build(&config).expect("stress scenario must be valid");

    let t = Instant::now();
    let windows = scenario.fleet.windows(TimeSlot(0));
    println!(
        "windows          {:>12.2?}  (n = {})",
        t.elapsed(),
        windows.len()
    );

    let t = Instant::now();
    let arena = VmArena::from_ids(windows.ids());
    println!("arena            {:>12.2?}", t.elapsed());

    let t = Instant::now();
    let cpu = CpuCorrelationMatrix::compute_auto(&windows, &config.sparsity);
    println!(
        "cpu correlation  {:>12.2?}  (sparse = {}, {} edges, baseline {:.3})",
        t.elapsed(),
        cpu.is_sparse(),
        cpu.edge_count(),
        cpu.baseline()
    );

    let t = Instant::now();
    let traffic = scenario.fleet.data_correlation().traffic_graph(&arena);
    println!(
        "traffic graph    {:>12.2?}  ({} edges)",
        t.elapsed(),
        traffic.edge_count()
    );

    let t = Instant::now();
    let mut layout =
        geoplace_core::ForceLayout::new(geoplace_core::ForceLayoutConfig::default(), 1);
    let points = layout.update(&arena, &cpu, &traffic).len();
    println!(
        "force layout     {:>12.2?}  ({} points, {} iterations)",
        t.elapsed(),
        points,
        layout.last_iterations()
    );
}
