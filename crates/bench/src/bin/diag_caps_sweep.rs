//! Diagnostic: sweep the caps knobs (grid share weighting, free-energy
//! emphasis) to locate the cost optimum of the Proposed policy.

use geoplace_bench::{proposed_config_for, run_proposed_with, CliArgs};
use geoplace_core::{CapsConfig, ProposedConfig};

fn main() {
    let config = CliArgs::parse().config();
    for (floor, free, grid) in [
        (0.10, 1.5, 1.1),
        (0.15, 2.0, 1.0),
        (0.20, 2.5, 1.0),
        (0.10, 3.0, 1.0),
        (0.25, 2.0, 0.9),
    ] {
        let proposed = ProposedConfig {
            caps: CapsConfig {
                weight_floor: floor,
                free_energy_scale: free,
                grid_scale: grid,
            },
            ..proposed_config_for(&config)
        };
        let report = run_proposed_with(&config, proposed);
        let totals = report.totals();
        let pv: f64 = report.hourly.iter().map(|h| h.pv_used_j).sum::<f64>() / 1e9;
        let batt: f64 = report
            .hourly
            .iter()
            .map(|h| h.battery_discharge_j)
            .sum::<f64>()
            / 1e9;
        println!(
            "floor {floor:.2} free {free:.1} grid {grid:.1} -> cost {:>7.2} energy {:>6.2} pv {pv:>5.2} batt {batt:>5.2} worst_rt {:>7.1} per-DC {:?}",
            totals.cost_eur,
            totals.energy_gj,
            totals.worst_response_s,
            report
                .per_dc_energy_gj
                .iter()
                .map(|g| (g * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
}
