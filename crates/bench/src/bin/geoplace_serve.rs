//! `geoplace-serve` — the online placement service: line-delimited JSON
//! commands on stdin, one JSON response per line on stdout.
//!
//! Accepts the shared harness flags (`--paper`/`--bench`/`--stress`,
//! `--seed N`, `--scenario NAME`) plus:
//!
//! * `--slots N` — horizon override (e.g. `--bench --seed 42 --slots 12`
//!   is exactly the quick-matrix `paper`/seed-42 golden cell);
//! * `--policy proposed|ener|pri|net` — the served policy (default
//!   `proposed`);
//! * `--external` — fleet changes come from `vm_arrive`/`vm_depart`/
//!   `wire_traffic` commands instead of the synthetic arrival process;
//! * `--trace PATH` — fleet changes replay a trace CSV (see
//!   `geoplace_workload::tracefile` for the schema). Strict: a missing
//!   file or a malformed row exits 2 naming the offending line before
//!   the session starts. Mutually exclusive with `--external`;
//! * `--checkpoint-every N --checkpoint-dir PATH` — write a
//!   `ckpt_slotNNNNN.gpck` snapshot into PATH after every N completed
//!   slots (both flags required together; N ≥ 1; an uncreatable
//!   directory exits 2 naming it). Snapshots restore with the
//!   `restore` command or inspect with `geoplace-ckpt`.
//!
//! See `geoplace_bench::serve` for the command set. The process exits 0
//! on a `shutdown` command or stdin EOF; malformed commands produce
//! `{"ok":false,"error":...}` responses and never kill the session.

use geoplace_bench::serve::Session;
use geoplace_bench::{flag_from_args, CliArgs, PolicyKind};
use std::io::{BufRead, Write};

fn main() {
    let cli = CliArgs::parse_strict(&[
        ("--slots", true),
        ("--policy", true),
        ("--external", false),
        ("--trace", true),
        ("--checkpoint-every", true),
        ("--checkpoint-dir", true),
    ]);
    let mut config = cli.config();
    if let Some(slots) = flag_from_args::<u32>("--slots") {
        config.horizon_slots = slots;
    }
    let policy = match flag_from_args::<String>("--policy").as_deref() {
        None | Some("proposed") => PolicyKind::Proposed,
        Some("ener") => PolicyKind::EnerAware,
        Some("pri") => PolicyKind::PriAware,
        Some("net") => PolicyKind::NetAware,
        Some(other) => {
            eprintln!("error: --policy expects proposed, ener, pri or net, got {other:?}");
            std::process::exit(2);
        }
    };
    let external = std::env::args().any(|a| a == "--external");
    let trace = flag_from_args::<String>("--trace");
    if external && trace.is_some() {
        eprintln!("error: --trace and --external are mutually exclusive");
        std::process::exit(2);
    }

    let session = match trace {
        Some(path) => match geoplace_workload::tracefile::load_trace(&path) {
            // Strict by contract: a bad trace dies here, naming its
            // line, rather than three thousand slots into the session.
            Ok(rows) => Session::with_trace(&config, policy, rows),
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        },
        None => Session::new(&config, policy, external),
    };
    let session = match session {
        Ok(session) => session,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };

    // Auto-checkpointing: both flags together, N ≥ 1, and a usable
    // directory — all validated here, before the session starts, so a
    // misconfigured service dies loudly instead of silently never saving.
    let every = flag_from_args::<u32>("--checkpoint-every");
    let dir = flag_from_args::<String>("--checkpoint-dir");
    let mut session = match (every, dir) {
        (None, None) => session,
        (Some(_), None) => {
            eprintln!("error: --checkpoint-every requires --checkpoint-dir PATH");
            std::process::exit(2);
        }
        (None, Some(_)) => {
            eprintln!("error: --checkpoint-dir requires --checkpoint-every N");
            std::process::exit(2);
        }
        (Some(0), Some(_)) => {
            eprintln!("error: --checkpoint-every must be at least 1 slot, got 0");
            std::process::exit(2);
        }
        (Some(every), Some(dir)) => match session.with_checkpointing(every, dir.into()) {
            Ok(session) => session,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        },
    };

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = session.handle_line(&line);
        // A closed stdout means the consumer is gone; there is nobody
        // left to serve, so end the session cleanly rather than panic.
        if writeln!(out, "{}", response.line).is_err() || out.flush().is_err() {
            return;
        }
        if response.shutdown {
            return;
        }
    }
    // stdin EOF without an explicit shutdown is a clean exit too.
}
