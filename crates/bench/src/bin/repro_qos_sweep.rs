//! Ablation A2: the QoS level that sets Algorithm 2's hard migration
//! latency budget (paper: 98 % → 72 s of the hour).

use geoplace_bench::table::render_table;
use geoplace_bench::{proposed_config_for, run_proposed_with, CliArgs};
use geoplace_network::latency_constraint_for_qos;

fn main() {
    let mut rows = Vec::new();
    for qos in [0.90, 0.95, 0.98, 0.99, 0.999] {
        let mut config = CliArgs::parse().config();
        config.qos = qos;
        let report = run_proposed_with(&config, proposed_config_for(&config));
        let totals = report.totals();
        rows.push(vec![
            format!("{:.1}%", qos * 100.0),
            format!("{:.0} s", latency_constraint_for_qos(qos).0),
            totals.migrations.to_string(),
            totals.migration_overruns.to_string(),
            format!("{:.2}", totals.cost_eur),
            format!("{:.1}", totals.worst_response_s),
        ]);
    }
    println!("Ablation A2 — QoS sweep (migration latency budget of Algorithm 2)");
    print!(
        "{}",
        render_table(
            &[
                "QoS",
                "budget",
                "migrations",
                "overruns",
                "cost EUR",
                "worst rt s"
            ],
            &rows
        )
    );
}
