//! Diagnostic: dense↔sparse pipeline agreement as a paired multi-seed
//! mean.
//!
//! Per-seed totals of the weekly closed loop are chaotic — a perturbed
//! RNG seed alone moves the cost total by ±5–10% because placement
//! decisions near price/cap boundaries bifurcate and the error feeds
//! back through warm starts and battery state. The honest estimator of
//! the sparse approximation's *systematic* effect is therefore the
//! paired mean across seeds: run dense and sparse on identical worlds,
//! average each side, compare the means (the chaotic part is
//! sign-alternating and cancels; a real bias would not).
//!
//! Flags: `--slots N` (horizon, default 48), `--seeds a,b,c`
//! (default 7,11,23,42,77,101,131,999); the fleet is always the repro
//! scale (~400 VMs).

use geoplace_bench::scenario::run_proposed_with;
use geoplace_bench::{flag_from_args, CliArgs, Scale};
use geoplace_core::ProposedConfig;

fn main() {
    let cli = CliArgs::parse_strict(&[("--slots", true), ("--seeds", true)]);
    let slots: u32 = flag_from_args("--slots").unwrap_or(48);
    let seeds: Vec<u64> = flag_from_args::<String>("--seeds")
        .map(|v| {
            v.split(',')
                .map(|x| {
                    x.parse().unwrap_or_else(|_| {
                        eprintln!("error: --seeds got unparsable value {x:?}");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| vec![7, 11, 23, 42, 77, 101, 131, 999]);

    // Both sides deliberately run the *same* ProposedConfig (no
    // probe-limit asymmetry): the comparison isolates the sparse
    // correlation/layout approximation, nothing else.
    let mut dense_mean = [0.0f64; 3];
    let mut sparse_mean = [0.0f64; 3];
    for &seed in &seeds {
        let mut dense_config = cli.world.apply(Scale::Repro.config(seed));
        dense_config.horizon_slots = slots;
        dense_config.sparsity = dense_config.sparsity.dense();
        let dense = run_proposed_with(&dense_config, ProposedConfig::default()).totals();

        let mut sparse_config = Scale::Repro.config(seed);
        sparse_config.horizon_slots = slots;
        sparse_config.sparsity = sparse_config.sparsity.sparse();
        sparse_config.sparsity.top_k = 64;
        sparse_config.sparsity.candidates_per_vm = 512;
        let sparse = run_proposed_with(&sparse_config, ProposedConfig::default()).totals();

        println!(
            "seed {seed}: cost {:.1} vs {:.1} ({:+.2}%), energy {:.3} vs {:.3}, \
             mean rt {:.0} vs {:.0} ({:+.2}%)",
            dense.cost_eur,
            sparse.cost_eur,
            (sparse.cost_eur / dense.cost_eur - 1.0) * 100.0,
            dense.energy_gj,
            sparse.energy_gj,
            dense.mean_response_s,
            sparse.mean_response_s,
            (sparse.mean_response_s / dense.mean_response_s - 1.0) * 100.0,
        );
        dense_mean[0] += dense.cost_eur;
        dense_mean[1] += dense.energy_gj;
        dense_mean[2] += dense.mean_response_s;
        sparse_mean[0] += sparse.cost_eur;
        sparse_mean[1] += sparse.energy_gj;
        sparse_mean[2] += sparse.mean_response_s;
    }
    for (label, i) in [("cost", 0), ("energy", 1), ("mean rt", 2)] {
        println!(
            "PAIRED MEAN {label:<8} {:.3} vs {:.3}  rel {:.4}",
            dense_mean[i] / seeds.len() as f64,
            sparse_mean[i] / seeds.len() as f64,
            (sparse_mean[i] / dense_mean[i] - 1.0).abs()
        );
    }
}
