//! `geoplace-ckpt` — inspect a `.gpck` checkpoint file without loading
//! a world: header dump (format version, config fingerprint, slot,
//! state hash), per-section sizes, and a round-trip self-check.
//!
//! ```text
//! geoplace-ckpt PATH [PATH...]
//! ```
//!
//! Exits 0 when every file decodes cleanly, 2 on a malformed file (the
//! error names the bad section and byte offset) or missing arguments.
//! The self-check re-encodes the decoded container and verifies byte
//! identity with the input — the codec's decode→encode invariant.

use geoplace_types::snap::{Checkpoint, FORMAT_VERSION};

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "--help" || p == "-h") {
        eprintln!("usage: geoplace-ckpt PATH [PATH...]");
        eprintln!("  dump the header, sections and state hash of .gpck checkpoint files");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match inspect(path) {
            Ok(report) => print!("{report}"),
            Err(message) => {
                eprintln!("error: {path}: {message}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}

fn inspect(path: &str) -> Result<String, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read: {e}"))?;
    let ck = Checkpoint::decode(&bytes).map_err(|e| e.to_string())?;
    let mut out = String::new();
    out.push_str(&format!("{path}\n"));
    out.push_str(&format!("  format version     {FORMAT_VERSION}\n"));
    out.push_str(&format!(
        "  config fingerprint {:#018x}\n",
        ck.config_fingerprint
    ));
    out.push_str(&format!("  slot               {}\n", ck.slot));
    out.push_str(&format!("  state hash         {:016x}\n", ck.state_hash));
    out.push_str(&format!("  total bytes        {}\n", bytes.len()));
    for (name, payload) in ck.sections() {
        out.push_str(&format!(
            "  section {name:<12} {:>9} bytes\n",
            payload.len()
        ));
    }
    if ck.encode() != bytes {
        return Err("decode→encode round-trip is not byte-identical".into());
    }
    out.push_str("  round-trip         ok\n");
    Ok(out)
}
