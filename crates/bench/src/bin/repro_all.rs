//! Runs all four policies once and reproduces every figure of the paper's
//! evaluation (Figs. 1–6) plus migration diagnostics.
//!
//! Scales: default = 1/5-fleet full week; `--paper` = Table I; `--bench` =
//! one-day mini run.

use geoplace_bench::{figures, run_all, CliArgs};

fn main() {
    let cli = CliArgs::parse_strict(&[("--csv", false)]);
    let config = cli.config();
    eprintln!(
        "running 4 policies at {:?} scale, scenario {:?}: {} DCs, {} slots, ~{:.0} VMs…",
        cli.scale,
        cli.world.name,
        config.dcs.len(),
        config.horizon_slots,
        config.fleet.arrivals.expected_population()
    );
    let reports = run_all(&config);
    print!("{}", figures::all_figures(&reports));
    print!("{}", figures::migration_summary(&reports));
    // `--csv` additionally writes the raw per-slot series and response
    // samples into results/ for external plotting.
    if std::env::args().any(|a| a == "--csv") {
        std::fs::create_dir_all("results").expect("create results dir");
        for report in &reports {
            let stem = report.policy.to_lowercase().replace('-', "_");
            std::fs::write(format!("results/{stem}_hourly.csv"), report.to_csv())
                .expect("write hourly csv");
            std::fs::write(
                format!("results/{stem}_response.csv"),
                report.response_samples_csv(),
            )
            .expect("write response csv");
        }
        eprintln!("CSV series written to results/");
    }
}
