//! CI determinism gate: runs the bench-scale scenario twice with the same
//! seed — once per policy under test, once with the sparse pipeline
//! forced — and fails loudly if any pair of reports differs anywhere
//! (totals, hourly records, per-DC energy). A second gate sweeps the
//! executor: the same seed at 1, 2 and 8 worker threads (dense and
//! sparse paths) must produce bit-identical reports — the determinism
//! contract of `geoplace_types::exec` enforced end to end.
//!
//! Same-seed bitwise reproducibility is a hard project invariant (every
//! repro figure and the dense↔sparse agreement bounds depend on it), and
//! this is the gate that keeps refactors honest.

use geoplace_bench::scenario::{run_policy, run_proposed_with, stress_proposed_config};
use geoplace_bench::{CliArgs, PolicyKind, Scale};
use geoplace_core::ProposedConfig;
use geoplace_dcsim::config::ScenarioConfig;
use geoplace_dcsim::metrics::SimulationReport;
use geoplace_types::Parallelism;

fn check(label: &str, a: &SimulationReport, b: &SimulationReport) -> bool {
    if a == b {
        let totals = a.totals();
        println!(
            "ok   {label:<24} cost {:.2} EUR, energy {:.3} GJ, worst rt {:.1} s",
            totals.cost_eur, totals.energy_gj, totals.worst_response_s
        );
        true
    } else {
        eprintln!("FAIL {label}: same-seed runs differ");
        if a.totals() != b.totals() {
            eprintln!("  first totals:  {:?}", a.totals());
            eprintln!("  second totals: {:?}", b.totals());
        } else {
            eprintln!("  totals match but hourly/per-DC series differ");
        }
        false
    }
}

/// Runs `config` under the Proposed policy with both the engine's and
/// the policy's kernels pinned to `threads` workers.
fn run_at(config: &ScenarioConfig, proposed: ProposedConfig, threads: usize) -> SimulationReport {
    let mut config = config.clone();
    config.parallelism = Parallelism::Threads(threads);
    let mut proposed = proposed;
    proposed.parallelism = Parallelism::Threads(threads);
    run_proposed_with(&config, proposed)
}

/// The multi-thread gate: `threads ∈ {1, 2, 8}` must be bit-identical.
fn check_thread_sweep(label: &str, config: &ScenarioConfig, proposed: ProposedConfig) -> bool {
    let reference = run_at(config, proposed, 1);
    let mut ok = true;
    for threads in [2usize, 8] {
        let report = run_at(config, proposed, threads);
        ok &= check(&format!("{label} @{threads}t ≡ @1t"), &reference, &report);
    }
    ok
}

fn main() {
    let cli = CliArgs::parse();
    let seed = cli.seed;
    // Scenario-aware: `--scenario NAME` runs the whole gate inside that
    // preset's world (the determinism contract holds in every world).
    let config = cli.world.apply(Scale::Bench.config(seed));
    let mut ok = true;

    for kind in PolicyKind::ALL {
        let first = run_policy(&config, kind);
        let second = run_policy(&config, kind);
        ok &= check(kind.name(), &first, &second);
    }

    // The sparse pipeline must be deterministic too: force it at bench
    // scale (Auto would stay dense down here).
    let mut sparse_config = config.clone();
    sparse_config.sparsity = sparse_config.sparsity.sparse();
    let first = run_proposed_with(&sparse_config, stress_proposed_config());
    let second = run_proposed_with(&sparse_config, stress_proposed_config());
    ok &= check("Proposed (sparse)", &first, &second);

    // Thread-count invariance, dense and sparse: any worker count must
    // reproduce the single-threaded report bit for bit.
    ok &= check_thread_sweep("Proposed (dense)", &config, ProposedConfig::default());
    ok &= check_thread_sweep(
        "Proposed (sparse)",
        &sparse_config,
        stress_proposed_config(),
    );

    if !ok {
        std::process::exit(1);
    }
    println!(
        "determinism gate passed (scenario {}, seed {seed}, threads {{1, 2, 8}})",
        cli.world.name
    );
}
