//! CI determinism gate: runs the bench-scale scenario twice with the same
//! seed — once per policy under test, once with the sparse pipeline
//! forced — and fails loudly if any pair of reports differs anywhere
//! (totals, hourly records, per-DC energy).
//!
//! Same-seed bitwise reproducibility is a hard project invariant (every
//! repro figure and the dense↔sparse agreement bounds depend on it), and
//! this is the gate that keeps refactors honest.

use geoplace_bench::scenario::{run_policy, run_proposed_with, stress_proposed_config};
use geoplace_bench::{seed_from_args, PolicyKind, Scale};
use geoplace_dcsim::metrics::SimulationReport;

fn check(label: &str, a: &SimulationReport, b: &SimulationReport) -> bool {
    if a == b {
        let totals = a.totals();
        println!(
            "ok   {label:<24} cost {:.2} EUR, energy {:.3} GJ, worst rt {:.1} s",
            totals.cost_eur, totals.energy_gj, totals.worst_response_s
        );
        true
    } else {
        eprintln!("FAIL {label}: same-seed runs differ");
        if a.totals() != b.totals() {
            eprintln!("  first totals:  {:?}", a.totals());
            eprintln!("  second totals: {:?}", b.totals());
        } else {
            eprintln!("  totals match but hourly/per-DC series differ");
        }
        false
    }
}

fn main() {
    let seed = seed_from_args();
    let config = Scale::Bench.config(seed);
    let mut ok = true;

    for kind in PolicyKind::ALL {
        let first = run_policy(&config, kind);
        let second = run_policy(&config, kind);
        ok &= check(kind.name(), &first, &second);
    }

    // The sparse pipeline must be deterministic too: force it at bench
    // scale (Auto would stay dense down here).
    let mut sparse_config = config;
    sparse_config.sparsity = sparse_config.sparsity.sparse();
    let first = run_proposed_with(&sparse_config, stress_proposed_config());
    let second = run_proposed_with(&sparse_config, stress_proposed_config());
    ok &= check("Proposed (sparse)", &first, &second);

    if !ok {
        std::process::exit(1);
    }
    println!("determinism gate passed (seed {seed})");
}
