//! Ablation A1: the α weighting factor of Eq. 5 — the energy/performance
//! trade-off knob of the force layout.

use geoplace_bench::table::render_table;
use geoplace_bench::{proposed_config_for, run_proposed_with, CliArgs};
use geoplace_core::ProposedConfig;

fn main() {
    let config = CliArgs::parse().config();
    let mut rows = Vec::new();
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let report = run_proposed_with(
            &config,
            ProposedConfig {
                alpha,
                ..proposed_config_for(&config)
            },
        );
        let totals = report.totals();
        rows.push(vec![
            format!("{alpha:.2}"),
            format!("{:.2}", totals.cost_eur),
            format!("{:.2}", totals.energy_gj),
            format!("{:.1}", totals.worst_response_s),
            format!("{:.1}", totals.mean_response_s),
            format!("{:.1}", totals.mean_active_servers),
        ]);
    }
    println!("Ablation A1 — α sweep (Eq. 5: F = α·F_attract + (1−α)·F_repulse)");
    print!(
        "{}",
        render_table(
            &[
                "alpha",
                "cost EUR",
                "energy GJ",
                "worst rt s",
                "mean rt s",
                "servers on"
            ],
            &rows
        )
    );
}
