//! Stress-scale smoke: drives the ≈10,000-VM, 3-site scenario through the
//! sparse slot pipeline and reports per-slot wall time. `--slots N` clips
//! the horizon (CI runs a few slots; the default is the full day).

use geoplace_bench::scenario::stress_proposed_config;
use geoplace_bench::{flag_from_args, seed_from_args, Scale};
use geoplace_core::ProposedPolicy;
use geoplace_dcsim::engine::{Scenario, Simulator};
use std::time::Instant;

fn main() {
    let seed = seed_from_args();
    let mut config = Scale::Stress.config(seed);
    if let Some(slots) = flag_from_args::<u32>("--slots") {
        config.horizon_slots = slots.max(1);
    }
    let build_start = Instant::now();
    let scenario = Scenario::build(&config).expect("stress scenario must be valid");
    let initial_vms = scenario.fleet.active().len();
    println!(
        "stress world built in {:.2?}: {} initial VMs, {} servers, {} slots",
        build_start.elapsed(),
        initial_vms,
        config.dcs.iter().map(|d| d.servers).sum::<u32>(),
        config.horizon_slots
    );

    let run_start = Instant::now();
    let mut policy = ProposedPolicy::new(stress_proposed_config());
    let report = Simulator::new(scenario).run(&mut policy);
    let elapsed = run_start.elapsed();
    let totals = report.totals();
    println!(
        "ran {} slots in {:.2?} ({:.2?}/slot)",
        report.hourly.len(),
        elapsed,
        elapsed / report.hourly.len().max(1) as u32
    );
    println!(
        "cost {:.2} EUR, energy {:.3} GJ, migrations {}, worst rt {:.1} s, \
         peak active VMs {}",
        totals.cost_eur,
        totals.energy_gj,
        totals.migrations,
        totals.worst_response_s,
        report
            .hourly
            .iter()
            .map(|h| h.active_vms)
            .max()
            .unwrap_or(0)
    );
    assert!(
        totals.energy_gj.is_finite() && totals.energy_gj > 0.0,
        "stress run produced non-finite energy"
    );
    println!("stress smoke passed (seed {seed})");
}
