//! Stress-scale smoke: drives the ≈10,000-VM, 3-site scenario through the
//! sparse slot pipeline once per worker-thread count and reports per-slot
//! wall time for each, so slot-step perf regressions are visible straight
//! in CI logs. The per-thread reports must be bit-identical (the executor
//! determinism contract at stress scale). `--slots N` clips the horizon
//! (CI runs a few slots; the default is the full day); `--threads N` pins
//! a single worker count instead of the default {1, 2, 8} sweep.

use geoplace_bench::scenario::stress_proposed_config;
use geoplace_bench::{flag_from_args, CliArgs, Scale};
use geoplace_core::ProposedPolicy;
use geoplace_dcsim::engine::{Scenario, Simulator};
use geoplace_dcsim::metrics::SimulationReport;
use geoplace_types::Parallelism;
use std::time::Instant;

fn main() {
    let cli = CliArgs::parse_strict(&[("--slots", true), ("--threads", true)]);
    let mut config = cli.world.apply(Scale::Stress.config(cli.seed));
    if let Some(slots) = flag_from_args::<u32>("--slots") {
        config.horizon_slots = slots.max(1);
    }
    let thread_counts: Vec<usize> = match flag_from_args::<usize>("--threads") {
        Some(threads) => vec![threads.max(1)],
        None => vec![1, 2, 8],
    };

    let mut reports: Vec<(usize, SimulationReport)> = Vec::new();
    for (index, &threads) in thread_counts.iter().enumerate() {
        let mut run_config = config.clone();
        run_config.parallelism = Parallelism::Threads(threads);
        let mut proposed = stress_proposed_config();
        proposed.parallelism = Parallelism::Threads(threads);
        let build_start = Instant::now();
        let scenario = Scenario::build(&run_config).expect("stress scenario must be valid");
        if index == 0 {
            println!(
                "stress world built in {:.2?}: {} initial VMs, {} servers, {} slots",
                build_start.elapsed(),
                scenario.fleet.active().len(),
                run_config.dcs.iter().map(|d| d.servers).sum::<u32>(),
                run_config.horizon_slots
            );
        }
        let run_start = Instant::now();
        let mut policy = ProposedPolicy::new(proposed);
        let report = Simulator::new(scenario).run(&mut policy);
        let elapsed = run_start.elapsed();
        println!(
            "threads {threads}: ran {} slots in {:.2?} ({:.2?}/slot)",
            report.hourly.len(),
            elapsed,
            elapsed / report.hourly.len().max(1) as u32
        );
        reports.push((threads, report));
    }

    let (_, reference) = &reports[0];
    for (threads, report) in &reports[1..] {
        assert_eq!(
            report, reference,
            "stress run at {threads} threads diverged from {} threads",
            reports[0].0
        );
    }

    let totals = reference.totals();
    println!(
        "cost {:.2} EUR, energy {:.3} GJ, migrations {}, worst rt {:.1} s, \
         peak active VMs {}",
        totals.cost_eur,
        totals.energy_gj,
        totals.migrations,
        totals.worst_response_s,
        reference
            .hourly
            .iter()
            .map(|h| h.active_vms)
            .max()
            .unwrap_or(0)
    );
    assert!(
        totals.energy_gj.is_finite() && totals.energy_gj > 0.0,
        "stress run produced non-finite energy"
    );
    if thread_counts.len() > 1 {
        println!("per-thread reports bit-identical across {thread_counts:?} workers");
    }
    println!(
        "stress smoke passed (scenario {}, seed {})",
        cli.world.name, cli.seed
    );
}
