//! Ablation A4: the repulsion statistic — the paper's worst-case
//! peak-coincidence ratio vs. a Pearson-correlation variant (DESIGN.md §5).

use geoplace_bench::table::render_table;
use geoplace_bench::{proposed_config_for, run_proposed_with, CliArgs};
use geoplace_core::ProposedConfig;
use geoplace_workload::cpucorr::CorrelationMetric;

fn main() {
    let config = CliArgs::parse().config();
    let mut rows = Vec::new();
    for (label, metric) in [
        (
            "peak coincidence (paper)",
            CorrelationMetric::PeakCoincidence,
        ),
        ("Pearson", CorrelationMetric::Pearson),
    ] {
        let report = run_proposed_with(
            &config,
            ProposedConfig {
                repulsion_metric: metric,
                ..proposed_config_for(&config)
            },
        );
        let totals = report.totals();
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", totals.cost_eur),
            format!("{:.2}", totals.energy_gj),
            format!("{:.1}", totals.worst_response_s),
            format!("{:.1}", totals.mean_active_servers),
        ]);
    }
    println!("Ablation A4 — repulsion statistic (Eq. 5's Corr_cpu)");
    print!(
        "{}",
        render_table(
            &[
                "metric",
                "cost EUR",
                "energy GJ",
                "worst rt s",
                "servers on"
            ],
            &rows
        )
    );
}
