//! Reproduces Table I: DCs' number of servers and energy-source
//! specification, as consumed by the simulator.

use geoplace_bench::table::render_table;
use geoplace_bench::CliArgs;

fn main() {
    let config = CliArgs::parse().config();
    let rows: Vec<Vec<String>> = config
        .dcs
        .iter()
        .map(|dc| {
            vec![
                dc.name.clone(),
                dc.servers.to_string(),
                format!("{:.0}", dc.pv_kwp),
                format!("{:.0}", dc.battery_kwh),
                format!("UTC+{}", dc.timezone_offset_hours),
                format!("{:.2}/{:.2}", dc.price_off_peak, dc.price_peak),
            ]
        })
        .collect();
    println!("Table I — DCs number of servers and energy sources specification");
    print!(
        "{}",
        render_table(
            &[
                "DC",
                "servers",
                "PV kWp",
                "battery kWh",
                "tz",
                "tariff off/peak EUR"
            ],
            &rows
        )
    );
}
