//! Per-slot wall-clock of the slot pipeline's three driving modes —
//! incremental, from-scratch and the `geoplace-serve` service path —
//! plus the checkpoint/resume overhead, emitted as `BENCH_10.json` so
//! the perf trajectory accumulates in CI.
//!
//! Runs the Proposed policy over the paper-scale fleet (≈1,200 VMs),
//! the stress fleet (≈10,000 VMs), and a failure-heavy paper-scale cell
//! (the `dc_outage` preset: forced evacuation + link partition +
//! cascading derate), once per
//! [`IncrementalConfig`](geoplace_dcsim::config::IncrementalConfig) mode
//! plus once through an in-process serve [`Session`] driven by scripted
//! `advance`/`decide` JSON lines (the full protocol round-trip: request
//! parse + stepper + response encode). Each cell is timed twice — a
//! 1-slot run isolates the slot-0 cost, the full run then yields the
//! *steady-state* per-slot wall-clock. All modes' report digests are
//! asserted identical, so the bench doubles as an end-to-end
//! equivalence smoke at every scale, failure worlds included.
//!
//! Each scale also gets a **checkpoint cell**: the run is frozen at the
//! mid-horizon boundary (`checkpoint_with_policy` + encode, timed),
//! restored into a fresh world (decode + `restore_with_policy`, timed),
//! driven to the end, and its digest asserted equal to the
//! uninterrupted run — so the snapshot size and save/restore overhead
//! land in the trajectory with correctness pinned.
//!
//! Flags: `--slots N` (horizon, default 6), `--seed N`, `--only N`
//! (restrict to the cells with that target fleet size, e.g. `--only
//! 1200` keeps both the paper and the dc_outage cells), `--out PATH`
//! (default `BENCH_10.json` in the working directory).

use geoplace_bench::flag_from_args;
use geoplace_bench::scenario::{proposed_config_for, PolicyKind};
use geoplace_bench::serve::Session;
use geoplace_core::ProposedPolicy;
use geoplace_dcsim::config::{IncrementalConfig, ScenarioConfig};
use geoplace_dcsim::engine::{Scenario, Simulator};
use std::time::Instant;

struct Cell {
    n_target: u32,
    scenario: &'static str,
    mode: &'static str,
    build_ms: f64,
    slot0_ms: f64,
    steady_per_slot_ms: f64,
    total_ms: f64,
    digest: String,
}

fn ms(duration: std::time::Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

/// Runs one (scale, mode) cell: a 1-slot run to isolate the slot-0 cost,
/// then the full horizon.
fn run_cell(
    base: &ScenarioConfig,
    n_target: u32,
    scenario_name: &'static str,
    mode: IncrementalConfig,
    slots: u32,
) -> Cell {
    let mut config = base.clone();
    config.incremental = mode;

    let mut one_slot = config.clone();
    one_slot.horizon_slots = 1;
    let scenario = Scenario::build(&one_slot).expect("valid config");
    let mut policy = ProposedPolicy::new(proposed_config_for(&one_slot));
    let start = Instant::now();
    let _ = Simulator::new(scenario).run(&mut policy);
    let slot0 = start.elapsed();

    let build_start = Instant::now();
    let scenario = Scenario::build(&config).expect("valid config");
    let build = build_start.elapsed();
    let mut policy = ProposedPolicy::new(proposed_config_for(&config));
    let start = Instant::now();
    let report = Simulator::new(scenario).run(&mut policy);
    let total = start.elapsed();
    let steady = (ms(total) - ms(slot0)).max(0.0) / f64::from(slots.saturating_sub(1).max(1));

    Cell {
        n_target,
        scenario: scenario_name,
        mode: match mode {
            IncrementalConfig::Auto => "incremental",
            IncrementalConfig::Off => "from_scratch",
        },
        build_ms: ms(build),
        slot0_ms: ms(slot0),
        steady_per_slot_ms: steady,
        total_ms: ms(total),
        digest: report.digest(),
    }
}

/// Times the service path: the same world pumped through an in-process
/// serve session with scripted protocol lines, so the cell includes the
/// JSON decode/encode of one `advance` + one `decide` round-trip per
/// slot on top of the stepper itself.
fn run_service_cell(
    base: &ScenarioConfig,
    n_target: u32,
    scenario: &'static str,
    slots: u32,
) -> Cell {
    let drive = |horizon: u32| -> (f64, f64, String) {
        let mut config = base.clone();
        config.horizon_slots = horizon;
        let build_start = Instant::now();
        let mut session = Session::new(&config, PolicyKind::Proposed, false).expect("valid config");
        let build = build_start.elapsed();
        let start = Instant::now();
        for _ in 0..horizon {
            for cmd in [r#"{"cmd":"advance"}"#, r#"{"cmd":"decide"}"#] {
                let response = session.handle_line(cmd);
                assert!(
                    response.line.starts_with(r#"{"ok":true"#),
                    "{cmd} failed: {}",
                    response.line
                );
            }
        }
        (ms(build), ms(start.elapsed()), session.digest())
    };

    let (_, slot0_ms, _) = drive(1);
    let (build_ms, total_ms, digest) = drive(slots);
    Cell {
        n_target,
        scenario,
        mode: "service",
        build_ms,
        slot0_ms,
        steady_per_slot_ms: (total_ms - slot0_ms).max(0.0)
            / f64::from(slots.saturating_sub(1).max(1)),
        total_ms,
        digest,
    }
}

struct CheckpointCell {
    n_target: u32,
    scenario: &'static str,
    slot: u32,
    save_ms: f64,
    restore_ms: f64,
    snapshot_bytes: usize,
    digest: String,
}

/// Freezes the run at the mid-horizon boundary, restores into a fresh
/// world, finishes it, and returns the resumed digest with the measured
/// save (checkpoint + encode) and restore (decode + restore) overheads.
fn run_checkpoint_cell(
    base: &ScenarioConfig,
    n_target: u32,
    scenario_name: &'static str,
    slots: u32,
) -> CheckpointCell {
    use geoplace_dcsim::checkpoint::{checkpoint_with_policy, restore_with_policy};
    use geoplace_dcsim::policy::GlobalPolicy;
    use geoplace_types::snap::Checkpoint;
    use geoplace_workload::source::SyntheticSource;
    let at = (slots / 2).max(1);
    let mut stepper = Simulator::new(Scenario::build(base).expect("valid config")).into_stepper();
    let mut policy = ProposedPolicy::new(proposed_config_for(base));
    let mut source = SyntheticSource;
    for _ in 0..at {
        stepper
            .advance_world(&mut source)
            .expect("synthetic advance");
        let decision = policy.decide(&stepper.observe());
        stepper.apply(decision).expect("valid decision");
    }
    let start = Instant::now();
    let ck = checkpoint_with_policy(&stepper, &policy).expect("boundary checkpoint");
    let bytes = ck.encode();
    let save = start.elapsed();
    let start = Instant::now();
    let decoded = Checkpoint::decode(&bytes).expect("own snapshot decodes");
    let mut resumed = Simulator::new(Scenario::build(base).expect("valid config")).into_stepper();
    let mut fresh = ProposedPolicy::new(proposed_config_for(base));
    restore_with_policy(&mut resumed, &mut fresh, &decoded).expect("own snapshot restores");
    let restore = start.elapsed();
    while !resumed.is_done() {
        resumed
            .advance_world(&mut source)
            .expect("synthetic advance");
        let decision = fresh.decide(&resumed.observe());
        resumed.apply(decision).expect("valid decision");
    }
    CheckpointCell {
        n_target,
        scenario: scenario_name,
        slot: at,
        save_ms: ms(save),
        restore_ms: ms(restore),
        snapshot_bytes: bytes.len(),
        digest: resumed.into_report(fresh.name()).digest(),
    }
}

fn main() {
    geoplace_bench::enforce_flags_or_exit(&[
        ("--slots", true),
        ("--seed", true),
        ("--only", true),
        ("--out", true),
    ]);
    let slots = flag_from_args::<u32>("--slots").unwrap_or(6).max(2);
    let seed = flag_from_args::<u64>("--seed").unwrap_or(42);
    let only = flag_from_args::<u32>("--only");
    let out = flag_from_args::<String>("--out").unwrap_or_else(|| "BENCH_10.json".into());

    let mut scales: Vec<(u32, &'static str, ScenarioConfig)> = Vec::new();
    let mut paper = ScenarioConfig::paper(seed);
    paper.horizon_slots = slots;
    scales.push((1200, "paper", paper.clone()));
    let mut stress = ScenarioConfig::stress(seed);
    stress.horizon_slots = slots;
    scales.push((10_000, "stress", stress));
    // The failure-heavy cell: the paper fleet under the dc_outage
    // preset, so the evacuation path, link-degraded migrations and the
    // cascade front all land in the perf trajectory.
    let outage = geoplace_scenarios::presets::dc_outage().apply(paper);
    scales.push((1200, "dc_outage", outage));
    if let Some(n) = only {
        scales.retain(|&(target, _, _)| target == n);
        assert!(!scales.is_empty(), "--only must name 1200 or 10000");
    }

    let mut cells: Vec<Cell> = Vec::new();
    let mut checkpoint_cells: Vec<CheckpointCell> = Vec::new();
    for (n_target, scenario, config) in &scales {
        let incremental = run_cell(config, *n_target, scenario, IncrementalConfig::Auto, slots);
        let from_scratch = run_cell(config, *n_target, scenario, IncrementalConfig::Off, slots);
        let service = run_service_cell(config, *n_target, scenario, slots);
        let checkpoint = run_checkpoint_cell(config, *n_target, scenario, slots);
        assert_eq!(
            incremental.digest, from_scratch.digest,
            "{scenario} n={n_target}: incremental and from-scratch reports diverged"
        );
        assert_eq!(
            incremental.digest, service.digest,
            "{scenario} n={n_target}: the serve session diverged from the engine"
        );
        assert_eq!(
            incremental.digest, checkpoint.digest,
            "{scenario} n={n_target}: the resumed run diverged from the uninterrupted one"
        );
        println!(
            "{:>9} n≈{:>5}: incremental {:8.1} ms/slot vs from-scratch {:8.1} ms/slot \
             (steady state, {:.2}x); service round-trip {:8.1} ms/slot",
            scenario,
            n_target,
            incremental.steady_per_slot_ms,
            from_scratch.steady_per_slot_ms,
            from_scratch.steady_per_slot_ms / incremental.steady_per_slot_ms.max(1e-9),
            service.steady_per_slot_ms,
        );
        println!(
            "{:>9} n≈{:>5}: checkpoint save {:6.1} ms, restore {:6.1} ms, {:>9} bytes \
             (slot {}, resumed digest verified)",
            scenario,
            n_target,
            checkpoint.save_ms,
            checkpoint.restore_ms,
            checkpoint.snapshot_bytes,
            checkpoint.slot,
        );
        cells.push(incremental);
        cells.push(from_scratch);
        cells.push(service);
        checkpoint_cells.push(checkpoint);
    }

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"n_vms_target\": {}, \"scenario\": \"{}\", \"mode\": \"{}\", \
                 \"build_ms\": {:.2}, \
                 \"slot0_ms\": {:.2}, \"steady_per_slot_ms\": {:.2}, \"total_ms\": {:.2}, \
                 \"digest\": \"{}\"}}",
                c.n_target,
                c.scenario,
                c.mode,
                c.build_ms,
                c.slot0_ms,
                c.steady_per_slot_ms,
                c.total_ms,
                c.digest
            )
        })
        .collect();
    let checkpoint_rows: Vec<String> = checkpoint_cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"n_vms_target\": {}, \"scenario\": \"{}\", \"slot\": {}, \
                 \"save_ms\": {:.2}, \"restore_ms\": {:.2}, \"snapshot_bytes\": {}, \
                 \"digest\": \"{}\"}}",
                c.n_target, c.scenario, c.slot, c.save_ms, c.restore_ms, c.snapshot_bytes, c.digest
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"slot_pipeline_modes\",\n  \"policy\": \"Proposed\",\n  \
         \"slots\": {slots},\n  \"seed\": {seed},\n  \"cells\": [\n{}\n  ],\n  \
         \"checkpoint_cells\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        checkpoint_rows.join(",\n")
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
