//! Diagnostic: per-DC energy distribution and average grid price paid per
//! policy (not a paper figure; used to understand cost composition).

use geoplace_bench::{run_all, CliArgs};

fn main() {
    let config = CliArgs::parse().config();
    let names: Vec<String> = config.dcs.iter().map(|d| d.name.clone()).collect();
    for report in run_all(&config) {
        let totals = report.totals();
        let grid_kwh = totals.grid_energy_gj * 1e9 / 3.6e6;
        let avg_price = if grid_kwh > 0.0 {
            totals.cost_eur / grid_kwh
        } else {
            0.0
        };
        let pv: f64 = report.hourly.iter().map(|h| h.pv_used_j).sum::<f64>() / 1e9;
        let curtailed: f64 = report.hourly.iter().map(|h| h.pv_curtailed_j).sum::<f64>() / 1e9;
        let battery: f64 = report
            .hourly
            .iter()
            .map(|h| h.battery_discharge_j)
            .sum::<f64>()
            / 1e9;
        print!(
            "{:<11} cost {:>7.1} grid {:>6.2}GJ avg {:>6.4}EUR/kWh pv {:>5.2} curt {:>5.2} batt {:>5.2} | per-DC GJ:",
            report.policy, totals.cost_eur, totals.grid_energy_gj, avg_price, pv, curtailed, battery
        );
        for (name, gj) in names.iter().zip(report.per_dc_energy_gj.iter()) {
            print!(" {name}={gj:.2}");
        }
        println!();
    }
}
