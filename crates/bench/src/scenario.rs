//! Shared scenario builders and policy runners for the reproduction
//! harness.
//!
//! Every figure is regenerated at two scales:
//!
//! * **paper** — Table I verbatim (3,000 servers, ~1,200 concurrent VMs,
//!   168 slots); minutes of runtime, used by the `repro_*` binaries with
//!   `--paper`;
//! * **repro** (default) — the same three sites at 1/5 fleet size and the
//!   full one-week horizon (~400 VMs), which preserves every diurnal
//!   price/PV/PUE interaction while finishing in tens of seconds;
//! * **bench** — a one-day, ~100-VM configuration for Criterion;
//! * **stress** — the same three sites grown to ≈10,000 concurrent VMs
//!   over one day, exercising the sparse slot pipeline.

use geoplace_baselines::{EnerAwarePolicy, NetAwarePolicy, PriAwarePolicy};
use geoplace_core::{ProposedConfig, ProposedPolicy};
use geoplace_dcsim::config::ScenarioConfig;
use geoplace_dcsim::engine::{Scenario, Simulator};
use geoplace_dcsim::metrics::SimulationReport;

/// Scale of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Table I verbatim; one week.
    Paper,
    /// 1/5 fleet; one week (default for the `repro_*` binaries).
    Repro,
    /// 1/10 fleet; one day (Criterion).
    Bench,
    /// ≈10,000 concurrent VMs, 3 sites, one day — the sparse-pipeline
    /// scaling scenario.
    Stress,
}

/// Parses `--seed N` from the process arguments, defaulting to 42 —
/// every `repro_*` binary accepts it so robustness across worlds is one
/// flag away.
///
/// A present-but-unparsable `--seed` terminates the process with a clear
/// error (exit code 2) instead of silently running the default world: a
/// sweep script with a typoed seed must fail loudly, not produce
/// plausible-looking numbers for the wrong scenario.
pub fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    match parse_seed(&args) {
        Ok(seed) => seed,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}

/// Pure parsing behind [`seed_from_args`]: `Ok(42)` when `--seed` is
/// absent, the parsed value when well-formed, and `Err` when the flag is
/// present without a valid u64.
pub fn parse_seed(args: &[String]) -> Result<u64, String> {
    let Some(position) = args.iter().position(|a| a == "--seed") else {
        return Ok(42);
    };
    let Some(raw) = args.get(position + 1) else {
        return Err("--seed requires a value (e.g. --seed 7)".into());
    };
    raw.parse()
        .map_err(|_| format!("--seed expects an unsigned integer, got {raw:?}"))
}

impl Scale {
    /// Parses process arguments: `--paper`, `--bench` or `--stress`
    /// select the respective scales; default is [`Scale::Repro`].
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--paper") {
            Scale::Paper
        } else if args.iter().any(|a| a == "--bench") {
            Scale::Bench
        } else if args.iter().any(|a| a == "--stress") {
            Scale::Stress
        } else {
            Scale::Repro
        }
    }

    /// The scenario configuration at this scale.
    pub fn config(self, seed: u64) -> ScenarioConfig {
        match self {
            Scale::Paper => ScenarioConfig::paper(seed),
            Scale::Repro => {
                let mut config = ScenarioConfig::paper(seed);
                for dc in &mut config.dcs {
                    dc.servers /= 5;
                    dc.pv_kwp /= 5.0;
                    dc.battery_kwh /= 5.0;
                }
                config.fleet.arrivals.groups_per_slot = 2.4;
                config.fleet.arrivals.initial_groups = 118;
                config
            }
            Scale::Bench => {
                let mut config = ScenarioConfig::scaled(seed);
                config.horizon_slots = 24;
                config
            }
            Scale::Stress => ScenarioConfig::stress(seed),
        }
    }
}

/// Window-probe bound the local packer uses at sparse-pipeline fleet
/// scales (the exact first-fit scan is O(n·servers·w) and intractable
/// at 10k VMs).
const SPARSE_SCALE_PROBE_LIMIT: usize = 32;

/// The [`ProposedConfig`] matching a scenario: identical placement
/// logic everywhere, but fleets large enough for the sparse pipeline
/// (per the scenario's own crossover) also bound the local packer's
/// window probes so the per-slot cost stays O(n·(servers + limit·w)).
/// The scenario's [`Parallelism`](geoplace_types::Parallelism) setting
/// carries over so the engine's and the policy's kernels share one
/// thread budget. Every harness entry point (`run_policy`, `run_all`,
/// the repro binaries' `--stress`/`--paper` scales) routes through this.
pub fn proposed_config_for(config: &ScenarioConfig) -> ProposedConfig {
    let mut proposed = ProposedConfig {
        parallelism: config.parallelism,
        ..ProposedConfig::default()
    };
    let expected = config.fleet.arrivals.expected_population() as usize;
    if config.sparsity.use_sparse(expected) {
        proposed.local.probe_limit = SPARSE_SCALE_PROBE_LIMIT;
    }
    proposed
}

/// The [`ProposedConfig`] stress runs use (probe-bounded local packer).
pub fn stress_proposed_config() -> ProposedConfig {
    let mut config = ProposedConfig::default();
    config.local.probe_limit = SPARSE_SCALE_PROBE_LIMIT;
    config
}

/// The four compared policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's two-phase multi-objective placement.
    Proposed,
    /// Cost-aware baseline (ref [17]).
    PriAware,
    /// Energy-aware baseline (ref [5]).
    EnerAware,
    /// Network-aware baseline (ref [6]).
    NetAware,
}

impl PolicyKind {
    /// All four, in the paper's presentation order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Proposed,
        PolicyKind::EnerAware,
        PolicyKind::PriAware,
        PolicyKind::NetAware,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Proposed => "Proposed",
            PolicyKind::PriAware => "Pri-aware",
            PolicyKind::EnerAware => "Ener-aware",
            PolicyKind::NetAware => "Net-aware",
        }
    }
}

/// Runs one policy over a fresh scenario built from `config`.
///
/// # Panics
///
/// Panics if the configuration fails validation — harness configurations
/// are static and must be correct.
pub fn run_policy(config: &ScenarioConfig, kind: PolicyKind) -> SimulationReport {
    let scenario = Scenario::build(config).expect("harness scenario must be valid");
    let simulator = Simulator::new(scenario);
    match kind {
        PolicyKind::Proposed => {
            let mut policy = ProposedPolicy::new(proposed_config_for(config));
            simulator.run(&mut policy)
        }
        PolicyKind::PriAware => simulator.run(&mut PriAwarePolicy::new()),
        PolicyKind::EnerAware => simulator.run(&mut EnerAwarePolicy::new()),
        PolicyKind::NetAware => simulator.run(&mut NetAwarePolicy::new()),
    }
}

/// Runs one policy with a custom Proposed configuration (ablations).
pub fn run_proposed_with(config: &ScenarioConfig, proposed: ProposedConfig) -> SimulationReport {
    let scenario = Scenario::build(config).expect("harness scenario must be valid");
    let mut policy = ProposedPolicy::new(proposed);
    Simulator::new(scenario).run(&mut policy)
}

/// Runs all four policies on identical scenarios (same seed → same
/// workload, weather, prices) and returns the reports in
/// [`PolicyKind::ALL`] order.
pub fn run_all(config: &ScenarioConfig) -> Vec<SimulationReport> {
    PolicyKind::ALL
        .iter()
        .map(|&kind| run_policy(config, kind))
        .collect()
}

/// Value of `--<name>` from the process arguments, parsed as `T`.
/// `None` when the flag is absent; a present-but-missing or unparsable
/// value terminates the process with a clear error (exit code 2), the
/// convention every harness flag follows (see [`seed_from_args`]).
pub fn flag_from_args<T: std::str::FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    let position = args.iter().position(|a| a == name)?;
    let Some(raw) = args.get(position + 1) else {
        eprintln!("error: {name} requires a value");
        std::process::exit(2);
    };
    match raw.parse() {
        Ok(value) => Some(value),
        Err(_) => {
            eprintln!("error: {name} got unparsable value {raw:?}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_build_valid_configs() {
        for scale in [Scale::Paper, Scale::Repro, Scale::Bench, Scale::Stress] {
            assert!(scale.config(1).validate().is_ok(), "{scale:?}");
        }
    }

    #[test]
    fn parse_seed_handles_all_shapes() {
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert_eq!(parse_seed(&args(&["bin"])), Ok(42));
        assert_eq!(parse_seed(&args(&["bin", "--seed", "7"])), Ok(7));
        assert_eq!(parse_seed(&args(&["bin", "--paper", "--seed", "0"])), Ok(0));
        assert!(parse_seed(&args(&["bin", "--seed"])).is_err());
        assert!(parse_seed(&args(&["bin", "--seed", "banana"])).is_err());
        assert!(parse_seed(&args(&["bin", "--seed", "-3"])).is_err());
    }

    #[test]
    fn stress_scale_uses_sparse_pipeline() {
        let config = Scale::Stress.config(1);
        assert!(config
            .sparsity
            .use_sparse(config.fleet.arrivals.expected_population() as usize));
        assert_eq!(config.horizon_slots, 24);
        assert!(stress_proposed_config().local.probe_limit < usize::MAX);
    }

    #[test]
    fn proposed_config_bounds_probes_only_at_sparse_scales() {
        // Dense-scale scenarios keep the exact first-fit scan; sparse-
        // scale ones (stress, paper) get the bounded probe budget — via
        // run_policy, so every repro binary's --stress is covered.
        let bench = Scale::Bench.config(1);
        assert_eq!(proposed_config_for(&bench).local.probe_limit, usize::MAX);
        let stress = Scale::Stress.config(1);
        assert_eq!(
            proposed_config_for(&stress).local.probe_limit,
            stress_proposed_config().local.probe_limit
        );
        let paper = Scale::Paper.config(1);
        assert!(proposed_config_for(&paper).local.probe_limit < usize::MAX);
    }

    #[test]
    fn repro_scale_shrinks_the_fleet() {
        let paper = Scale::Paper.config(1);
        let repro = Scale::Repro.config(1);
        assert!(repro.dcs[0].servers < paper.dcs[0].servers);
        assert!(
            repro.fleet.arrivals.expected_population() < paper.fleet.arrivals.expected_population()
        );
        assert_eq!(
            repro.horizon_slots, paper.horizon_slots,
            "keep the weekly horizon"
        );
    }

    #[test]
    fn policy_names_match_paper_legends() {
        let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["Proposed", "Ener-aware", "Pri-aware", "Net-aware"]);
    }

    #[test]
    fn run_policy_smoke() {
        let mut config = Scale::Bench.config(3);
        config.horizon_slots = 2;
        for kind in PolicyKind::ALL {
            let report = run_policy(&config, kind);
            assert_eq!(report.policy, kind.name());
            assert_eq!(report.hourly.len(), 2);
        }
    }
}
