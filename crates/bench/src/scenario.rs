//! Shared scenario builders and policy runners for the reproduction
//! harness.
//!
//! Every figure is regenerated at two scales:
//!
//! * **paper** — Table I verbatim (3,000 servers, ~1,200 concurrent VMs,
//!   168 slots); minutes of runtime, used by the `repro_*` binaries with
//!   `--paper`;
//! * **repro** (default) — the same three sites at 1/5 fleet size and the
//!   full one-week horizon (~400 VMs), which preserves every diurnal
//!   price/PV/PUE interaction while finishing in tens of seconds;
//! * **bench** — a one-day, ~100-VM configuration for Criterion.

use geoplace_baselines::{EnerAwarePolicy, NetAwarePolicy, PriAwarePolicy};
use geoplace_core::{ProposedConfig, ProposedPolicy};
use geoplace_dcsim::config::ScenarioConfig;
use geoplace_dcsim::engine::{Scenario, Simulator};
use geoplace_dcsim::metrics::SimulationReport;
use geoplace_dcsim::policy::GlobalPolicy;

/// Scale of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Table I verbatim; one week.
    Paper,
    /// 1/5 fleet; one week (default for the `repro_*` binaries).
    Repro,
    /// 1/10 fleet; one day (Criterion).
    Bench,
}

/// Parses `--seed N` from the process arguments, defaulting to 42 —
/// every `repro_*` binary accepts it so robustness across worlds is one
/// flag away.
pub fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

impl Scale {
    /// Parses process arguments: `--paper` or `--bench` select the
    /// respective scales; default is [`Scale::Repro`].
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--paper") {
            Scale::Paper
        } else if args.iter().any(|a| a == "--bench") {
            Scale::Bench
        } else {
            Scale::Repro
        }
    }

    /// The scenario configuration at this scale.
    pub fn config(self, seed: u64) -> ScenarioConfig {
        match self {
            Scale::Paper => ScenarioConfig::paper(seed),
            Scale::Repro => {
                let mut config = ScenarioConfig::paper(seed);
                for dc in &mut config.dcs {
                    dc.servers /= 5;
                    dc.pv_kwp /= 5.0;
                    dc.battery_kwh /= 5.0;
                }
                config.fleet.arrivals.groups_per_slot = 2.4;
                config.fleet.arrivals.initial_groups = 118;
                config
            }
            Scale::Bench => {
                let mut config = ScenarioConfig::scaled(seed);
                config.horizon_slots = 24;
                config
            }
        }
    }
}

/// The four compared policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's two-phase multi-objective placement.
    Proposed,
    /// Cost-aware baseline (ref [17]).
    PriAware,
    /// Energy-aware baseline (ref [5]).
    EnerAware,
    /// Network-aware baseline (ref [6]).
    NetAware,
}

impl PolicyKind {
    /// All four, in the paper's presentation order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Proposed,
        PolicyKind::EnerAware,
        PolicyKind::PriAware,
        PolicyKind::NetAware,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Proposed => "Proposed",
            PolicyKind::PriAware => "Pri-aware",
            PolicyKind::EnerAware => "Ener-aware",
            PolicyKind::NetAware => "Net-aware",
        }
    }
}

/// Runs one policy over a fresh scenario built from `config`.
///
/// # Panics
///
/// Panics if the configuration fails validation — harness configurations
/// are static and must be correct.
pub fn run_policy(config: &ScenarioConfig, kind: PolicyKind) -> SimulationReport {
    let scenario = Scenario::build(config).expect("harness scenario must be valid");
    let simulator = Simulator::new(scenario);
    match kind {
        PolicyKind::Proposed => {
            let mut policy = ProposedPolicy::new(ProposedConfig::default());
            simulator.run(&mut policy)
        }
        PolicyKind::PriAware => simulator.run(&mut PriAwarePolicy::new()),
        PolicyKind::EnerAware => simulator.run(&mut EnerAwarePolicy::new()),
        PolicyKind::NetAware => simulator.run(&mut NetAwarePolicy::new()),
    }
}

/// Runs one policy with a custom Proposed configuration (ablations).
pub fn run_proposed_with(config: &ScenarioConfig, proposed: ProposedConfig) -> SimulationReport {
    let scenario = Scenario::build(config).expect("harness scenario must be valid");
    let mut policy = ProposedPolicy::new(proposed);
    Simulator::new(scenario).run(&mut policy)
}

/// Runs all four policies on identical scenarios (same seed → same
/// workload, weather, prices) and returns the reports in
/// [`PolicyKind::ALL`] order.
pub fn run_all(config: &ScenarioConfig) -> Vec<SimulationReport> {
    PolicyKind::ALL
        .iter()
        .map(|&kind| run_policy(config, kind))
        .collect()
}

/// Convenience: a boxed instance of each policy (used by generic tests).
pub fn make_policy(kind: PolicyKind) -> Box<dyn GlobalPolicy> {
    match kind {
        PolicyKind::Proposed => Box::new(ProposedPolicy::new(ProposedConfig::default())),
        PolicyKind::PriAware => Box::new(PriAwarePolicy::new()),
        PolicyKind::EnerAware => Box::new(EnerAwarePolicy::new()),
        PolicyKind::NetAware => Box::new(NetAwarePolicy::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_build_valid_configs() {
        for scale in [Scale::Paper, Scale::Repro, Scale::Bench] {
            assert!(scale.config(1).validate().is_ok(), "{scale:?}");
        }
    }

    #[test]
    fn repro_scale_shrinks_the_fleet() {
        let paper = Scale::Paper.config(1);
        let repro = Scale::Repro.config(1);
        assert!(repro.dcs[0].servers < paper.dcs[0].servers);
        assert!(
            repro.fleet.arrivals.expected_population() < paper.fleet.arrivals.expected_population()
        );
        assert_eq!(
            repro.horizon_slots, paper.horizon_slots,
            "keep the weekly horizon"
        );
    }

    #[test]
    fn policy_names_match_paper_legends() {
        let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["Proposed", "Ener-aware", "Pri-aware", "Net-aware"]);
    }

    #[test]
    fn run_policy_smoke() {
        let mut config = Scale::Bench.config(3);
        config.horizon_slots = 2;
        for kind in PolicyKind::ALL {
            let report = run_policy(&config, kind);
            assert_eq!(report.policy, kind.name());
            assert_eq!(report.hourly.len(), 2);
        }
    }
}
