//! Shared scenario builders and policy runners for the reproduction
//! harness.
//!
//! Every figure is regenerated at two scales:
//!
//! * **paper** — Table I verbatim (3,000 servers, ~1,200 concurrent VMs,
//!   168 slots); minutes of runtime, used by the `repro_*` binaries with
//!   `--paper`;
//! * **repro** (default) — the same three sites at 1/5 fleet size and the
//!   full one-week horizon (~400 VMs), which preserves every diurnal
//!   price/PV/PUE interaction while finishing in tens of seconds;
//! * **bench** — a one-day, ~100-VM configuration for Criterion;
//! * **stress** — the same three sites grown to ≈10,000 concurrent VMs
//!   over one day, exercising the sparse slot pipeline.

use geoplace_baselines::{EnerAwarePolicy, NetAwarePolicy, PriAwarePolicy};
use geoplace_core::{ProposedConfig, ProposedPolicy};
use geoplace_dcsim::config::ScenarioConfig;
use geoplace_dcsim::engine::{Scenario, Simulator};
use geoplace_dcsim::metrics::SimulationReport;
use geoplace_scenarios::{presets, WorldSpec};

/// Scale of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Table I verbatim; one week.
    Paper,
    /// 1/5 fleet; one week (default for the `repro_*` binaries).
    Repro,
    /// 1/10 fleet; one day (Criterion).
    Bench,
    /// ≈10,000 concurrent VMs, 3 sites, one day — the sparse-pipeline
    /// scaling scenario.
    Stress,
}

/// Parses `--seed N` from the process arguments, defaulting to 42 —
/// every `repro_*` binary accepts it so robustness across worlds is one
/// flag away.
///
/// A present-but-unparsable `--seed` terminates the process with a clear
/// error (exit code 2) instead of silently running the default world: a
/// sweep script with a typoed seed must fail loudly, not produce
/// plausible-looking numbers for the wrong scenario.
pub fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    match parse_seed(&args) {
        Ok(seed) => seed,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}

/// Pure parsing behind [`seed_from_args`]: `Ok(42)` when `--seed` is
/// absent, the parsed value when well-formed, and `Err` when the flag is
/// present without a valid u64.
pub fn parse_seed(args: &[String]) -> Result<u64, String> {
    let Some(position) = args.iter().position(|a| a == "--seed") else {
        return Ok(42);
    };
    let Some(raw) = args.get(position + 1) else {
        return Err("--seed requires a value (e.g. --seed 7)".into());
    };
    raw.parse()
        .map_err(|_| format!("--seed expects an unsigned integer, got {raw:?}"))
}

impl Scale {
    /// Parses process arguments: `--paper`, `--bench` or `--stress`
    /// select the respective scales; default is [`Scale::Repro`].
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        Scale::from_slice(&args)
    }

    /// Pure parsing behind [`Scale::from_args`]. When several scale
    /// flags appear, the documented precedence is `--paper` over
    /// `--bench` over `--stress` (largest pinned-down world wins),
    /// regardless of argument position; no flag means [`Scale::Repro`].
    pub fn from_slice(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--paper") {
            Scale::Paper
        } else if args.iter().any(|a| a == "--bench") {
            Scale::Bench
        } else if args.iter().any(|a| a == "--stress") {
            Scale::Stress
        } else {
            Scale::Repro
        }
    }

    /// The scenario configuration at this scale.
    pub fn config(self, seed: u64) -> ScenarioConfig {
        match self {
            Scale::Paper => ScenarioConfig::paper(seed),
            Scale::Repro => {
                let mut config = ScenarioConfig::paper(seed);
                for dc in &mut config.dcs {
                    dc.servers /= 5;
                    dc.pv_kwp /= 5.0;
                    dc.battery_kwh /= 5.0;
                }
                config.fleet.arrivals.groups_per_slot = 2.4;
                config.fleet.arrivals.initial_groups = 118;
                config
            }
            Scale::Bench => {
                let mut config = ScenarioConfig::scaled(seed);
                config.horizon_slots = 24;
                config
            }
            Scale::Stress => ScenarioConfig::stress(seed),
        }
    }
}

/// The one parsed form of every harness binary's command line: scale
/// flags, `--seed N` and `--scenario NAME` (a preset from the
/// [`geoplace_scenarios`] registry). All `repro_*`/`diag_*`/CI binaries
/// route through this instead of hand-rolling flag scans.
///
/// # Examples
///
/// ```
/// use geoplace_bench::scenario::CliArgs;
/// use geoplace_bench::Scale;
///
/// let args: Vec<String> = ["bin", "--bench", "--seed", "7", "--scenario", "flash_crowd"]
///     .iter().map(|s| s.to_string()).collect();
/// let cli = CliArgs::from_slice(&args).unwrap();
/// assert_eq!((cli.scale, cli.seed, cli.world.name), (Scale::Bench, 7, "flash_crowd"));
/// assert!(cli.config().validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// The base scale (`--paper` / `--bench` / `--stress`, default repro).
    pub scale: Scale,
    /// `--seed N` (default 42).
    pub seed: u64,
    /// The world preset (`--scenario NAME`, default `paper`).
    pub world: WorldSpec,
}

impl CliArgs {
    /// Parses the process arguments; any malformed flag, unknown flag
    /// or unknown scenario name terminates the process with exit code
    /// 2 — for an unknown name the error lists the whole registry, so a
    /// typo in a sweep script fails loudly with the fix on screen.
    pub fn parse() -> CliArgs {
        CliArgs::parse_strict(&[])
    }

    /// [`CliArgs::parse`] for binaries with extra flags beyond the
    /// shared vocabulary: `extras` lists them as
    /// `(name, takes_value)` pairs. Anything outside the combined
    /// vocabulary — a typoed `--sede`, a stray positional — terminates
    /// the process with exit code 2 naming the offending argument.
    pub fn parse_strict(extras: &[(&str, bool)]) -> CliArgs {
        let args: Vec<String> = std::env::args().collect();
        let mut known: Vec<(&str, bool)> = BASE_FLAGS.to_vec();
        known.extend_from_slice(extras);
        if let Err(message) = check_unknown_flags(&args, &known) {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
        match CliArgs::from_slice(&args) {
            Ok(cli) => cli,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
    }

    /// Pure parsing behind [`CliArgs::parse`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when `--seed` is malformed,
    /// `--scenario` is missing its value, or the scenario name is not
    /// in the registry (the message lists every registered preset).
    pub fn from_slice(args: &[String]) -> std::result::Result<CliArgs, String> {
        let seed = parse_seed(args)?;
        let scale = Scale::from_slice(args);
        let world = match flag_value(args, "--scenario")? {
            None => presets::paper(),
            Some(name) => presets::named(&name).ok_or_else(|| {
                let listing: String = presets::registry()
                    .iter()
                    .map(|spec| format!("\n  {:<16} {}", spec.name, spec.stresses))
                    .collect();
                format!("unknown scenario {name:?}; registered scenarios:{listing}")
            })?,
        };
        Ok(CliArgs { scale, seed, world })
    }

    /// The fully lowered scenario: the preset's deltas applied to the
    /// base scale configuration at this seed.
    pub fn config(&self) -> ScenarioConfig {
        self.world.apply(self.scale.config(self.seed))
    }
}

/// The flag vocabulary every [`CliArgs`] binary shares, as
/// `(name, takes_value)` pairs.
pub const BASE_FLAGS: &[(&str, bool)] = &[
    ("--paper", false),
    ("--bench", false),
    ("--stress", false),
    ("--seed", true),
    ("--scenario", true),
];

/// Scans `args` (skipping `args[0]`) against an explicit vocabulary of
/// `(name, takes_value)` flags. Value-taking flags consume the next
/// token. The error names the offending argument: `unknown flag --x`
/// for an out-of-vocabulary flag, `--x requires a value` for a dangling
/// value flag, `unexpected argument "x"` for a stray positional.
pub fn check_unknown_flags(
    args: &[String],
    known: &[(&str, bool)],
) -> std::result::Result<(), String> {
    let mut i = 1;
    while i < args.len() {
        let token = &args[i];
        match known.iter().find(|(name, _)| name == token) {
            Some(&(name, takes_value)) => {
                if takes_value {
                    if i + 1 >= args.len() {
                        return Err(format!("{name} requires a value"));
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            None if token.starts_with('-') => return Err(format!("unknown flag {token}")),
            None => return Err(format!("unexpected argument {token:?}")),
        }
    }
    Ok(())
}

/// The strict-vocabulary gate for binaries that do not go through
/// [`CliArgs`] (they list their *whole* vocabulary explicitly): any
/// argument outside it terminates the process with exit code 2 naming
/// the offender, matching every other harness binary's convention.
pub fn enforce_flags_or_exit(known: &[(&str, bool)]) {
    let args: Vec<String> = std::env::args().collect();
    if let Err(message) = check_unknown_flags(&args, known) {
        eprintln!("error: {message}");
        std::process::exit(2);
    }
}

/// Raw value of `--<name>`, if present: `Ok(None)` when absent, `Err`
/// when the flag dangles without a value.
fn flag_value(args: &[String], name: &str) -> std::result::Result<Option<String>, String> {
    let Some(position) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    match args.get(position + 1) {
        Some(raw) => Ok(Some(raw.clone())),
        None => Err(format!("{name} requires a value")),
    }
}

/// Window-probe bound the local packer uses at sparse-pipeline fleet
/// scales (the exact first-fit scan is O(n·servers·w) and intractable
/// at 10k VMs).
const SPARSE_SCALE_PROBE_LIMIT: usize = 32;

/// The [`ProposedConfig`] matching a scenario: identical placement
/// logic everywhere, but fleets large enough for the sparse pipeline
/// (per the scenario's own crossover) also bound the local packer's
/// window probes so the per-slot cost stays O(n·(servers + limit·w)).
/// The scenario's [`Parallelism`](geoplace_types::Parallelism) setting
/// carries over so the engine's and the policy's kernels share one
/// thread budget. Every harness entry point (`run_policy`, `run_all`,
/// the repro binaries' `--stress`/`--paper` scales) routes through this.
pub fn proposed_config_for(config: &ScenarioConfig) -> ProposedConfig {
    let mut proposed = ProposedConfig {
        parallelism: config.parallelism,
        ..ProposedConfig::default()
    };
    let expected = config.fleet.arrivals.expected_population() as usize;
    if config.sparsity.use_sparse(expected) {
        proposed.local.probe_limit = SPARSE_SCALE_PROBE_LIMIT;
    }
    proposed
}

/// The [`ProposedConfig`] stress runs use (probe-bounded local packer).
pub fn stress_proposed_config() -> ProposedConfig {
    let mut config = ProposedConfig::default();
    config.local.probe_limit = SPARSE_SCALE_PROBE_LIMIT;
    config
}

/// The four compared policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's two-phase multi-objective placement.
    Proposed,
    /// Cost-aware baseline (ref [17]).
    PriAware,
    /// Energy-aware baseline (ref [5]).
    EnerAware,
    /// Network-aware baseline (ref [6]).
    NetAware,
}

impl PolicyKind {
    /// All four, in the paper's presentation order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Proposed,
        PolicyKind::EnerAware,
        PolicyKind::PriAware,
        PolicyKind::NetAware,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Proposed => "Proposed",
            PolicyKind::PriAware => "Pri-aware",
            PolicyKind::EnerAware => "Ener-aware",
            PolicyKind::NetAware => "Net-aware",
        }
    }
}

/// Runs one policy over a fresh scenario built from `config`.
///
/// # Panics
///
/// Panics if the configuration fails validation — harness configurations
/// are static and must be correct.
pub fn run_policy(config: &ScenarioConfig, kind: PolicyKind) -> SimulationReport {
    let scenario = Scenario::build(config).expect("harness scenario must be valid");
    let simulator = Simulator::new(scenario);
    match kind {
        PolicyKind::Proposed => {
            let mut policy = ProposedPolicy::new(proposed_config_for(config));
            simulator.run(&mut policy)
        }
        PolicyKind::PriAware => simulator.run(&mut PriAwarePolicy::new()),
        PolicyKind::EnerAware => simulator.run(&mut EnerAwarePolicy::new()),
        PolicyKind::NetAware => simulator.run(&mut NetAwarePolicy::new()),
    }
}

/// Builds the selected policy fresh over a configuration — the exact
/// construction [`run_policy`] uses, boxed for stepper-level drivers
/// (serve sessions, checkpoint/resume tests).
pub fn policy_for(
    config: &ScenarioConfig,
    kind: PolicyKind,
) -> Box<dyn geoplace_dcsim::policy::GlobalPolicy> {
    match kind {
        PolicyKind::Proposed => Box::new(ProposedPolicy::new(proposed_config_for(config))),
        PolicyKind::PriAware => Box::new(PriAwarePolicy::new()),
        PolicyKind::EnerAware => Box::new(EnerAwarePolicy::new()),
        PolicyKind::NetAware => Box::new(NetAwarePolicy::new()),
    }
}

/// Runs one policy with a custom Proposed configuration (ablations).
pub fn run_proposed_with(config: &ScenarioConfig, proposed: ProposedConfig) -> SimulationReport {
    let scenario = Scenario::build(config).expect("harness scenario must be valid");
    let mut policy = ProposedPolicy::new(proposed);
    Simulator::new(scenario).run(&mut policy)
}

/// Runs all four policies on identical scenarios (same seed → same
/// workload, weather, prices) and returns the reports in
/// [`PolicyKind::ALL`] order.
pub fn run_all(config: &ScenarioConfig) -> Vec<SimulationReport> {
    PolicyKind::ALL
        .iter()
        .map(|&kind| run_policy(config, kind))
        .collect()
}

/// Horizon (slots) of the quick golden matrix: long enough that every
/// preset's events open inside it, short enough for tier-1.
pub const QUICK_MATRIX_SLOTS: u32 = 12;

/// Seeds of the quick golden matrix.
pub const QUICK_MATRIX_SEEDS: [u64; 2] = [41, 42];

/// The configuration of one quick-matrix cell: the bench scale clipped
/// to [`QUICK_MATRIX_SLOTS`], with the preset's deltas applied. This is
/// the *shared* definition behind both the `scenario_matrix --quick`
/// gate and the committed golden digests — change it and the goldens
/// must be regenerated.
pub fn quick_matrix_config(spec: &WorldSpec, seed: u64) -> ScenarioConfig {
    let mut base = Scale::Bench.config(seed);
    base.horizon_slots = QUICK_MATRIX_SLOTS;
    spec.apply(base)
}

/// Runs one policy with the engine's and the policy's kernels pinned to
/// `threads` workers — the executor contract says the report must be
/// bit-identical to any other thread count.
pub fn run_policy_threads(
    config: &ScenarioConfig,
    kind: PolicyKind,
    threads: usize,
) -> SimulationReport {
    let mut config = config.clone();
    config.parallelism = geoplace_types::Parallelism::Threads(threads);
    run_policy(&config, kind)
}

/// One canonical TSV row of the golden digest matrix.
pub fn golden_row(scenario: &str, policy: PolicyKind, seed: u64, digest: &str) -> String {
    format!("{scenario}\t{}\t{seed}\t{digest}", policy.name())
}

/// Header line of the golden digest file.
pub const GOLDEN_HEADER: &str = "# scenario\tpolicy\tseed\tdigest";

/// Path of the committed golden digest file — the single definition
/// shared by the `scenario_matrix` binary and the tier-1 golden test,
/// so the `--update` and `GOLDEN_UPDATE=1` regeneration paths can
/// never write to different places.
pub fn golden_digests_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/digests.tsv")
}

/// Renders the full golden file from canonical rows.
pub fn render_golden_file(rows: &[String]) -> String {
    let mut out = String::from(GOLDEN_HEADER);
    out.push('\n');
    for row in rows {
        out.push_str(row);
        out.push('\n');
    }
    out
}

/// Parses a golden file into `"scenario\tpolicy\tseed" → digest`.
///
/// # Panics
///
/// Panics on a malformed (tab-less) non-comment line — the file is
/// machine-generated, so corruption must fail loudly.
pub fn parse_golden_file(content: &str) -> std::collections::BTreeMap<String, String> {
    content
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (key, digest) = l.rsplit_once('\t').expect("malformed golden row");
            (key.to_string(), digest.to_string())
        })
        .collect()
}

/// Value of `--<name>` from the process arguments, parsed as `T`.
/// `None` when the flag is absent; a present-but-missing or unparsable
/// value terminates the process with a clear error (exit code 2), the
/// convention every harness flag follows (see [`seed_from_args`]).
pub fn flag_from_args<T: std::str::FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    let position = args.iter().position(|a| a == name)?;
    let Some(raw) = args.get(position + 1) else {
        eprintln!("error: {name} requires a value");
        std::process::exit(2);
    };
    match raw.parse() {
        Ok(value) => Some(value),
        Err(_) => {
            eprintln!("error: {name} got unparsable value {raw:?}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_build_valid_configs() {
        for scale in [Scale::Paper, Scale::Repro, Scale::Bench, Scale::Stress] {
            assert!(scale.config(1).validate().is_ok(), "{scale:?}");
        }
    }

    #[test]
    fn parse_seed_handles_all_shapes() {
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert_eq!(parse_seed(&args(&["bin"])), Ok(42));
        assert_eq!(parse_seed(&args(&["bin", "--seed", "7"])), Ok(7));
        assert_eq!(parse_seed(&args(&["bin", "--paper", "--seed", "0"])), Ok(0));
        assert!(parse_seed(&args(&["bin", "--seed"])).is_err());
        assert!(parse_seed(&args(&["bin", "--seed", "banana"])).is_err());
        assert!(parse_seed(&args(&["bin", "--seed", "-3"])).is_err());
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn scale_flags_resolve_by_documented_precedence() {
        // Precedence: --paper > --bench > --stress > default (repro),
        // independent of argument order.
        assert_eq!(Scale::from_slice(&args(&["bin"])), Scale::Repro);
        assert_eq!(
            Scale::from_slice(&args(&["bin", "--stress"])),
            Scale::Stress
        );
        assert_eq!(
            Scale::from_slice(&args(&["bin", "--bench", "--paper"])),
            Scale::Paper
        );
        assert_eq!(
            Scale::from_slice(&args(&["bin", "--paper", "--bench"])),
            Scale::Paper
        );
        assert_eq!(
            Scale::from_slice(&args(&["bin", "--stress", "--bench"])),
            Scale::Bench
        );
        assert_eq!(
            Scale::from_slice(&args(&["bin", "--stress", "--bench", "--paper"])),
            Scale::Paper
        );
    }

    #[test]
    fn cli_args_parse_all_flags_together() {
        let cli = CliArgs::from_slice(&args(&[
            "bin",
            "--scenario",
            "churn_storm",
            "--bench",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(cli.scale, Scale::Bench);
        assert_eq!(cli.seed, 9);
        assert_eq!(cli.world.name, "churn_storm");
        let config = cli.config();
        assert!(config.validate().is_ok());
        assert!(config.fleet.arrivals.mean_lifetime_slots < 24.0 * 0.5);
    }

    #[test]
    fn cli_args_default_to_the_paper_world() {
        let cli = CliArgs::from_slice(&args(&["bin"])).unwrap();
        assert_eq!(cli.scale, Scale::Repro);
        assert_eq!(cli.seed, 42);
        assert_eq!(cli.world.name, "paper");
        assert_eq!(cli.config(), Scale::Repro.config(42), "paper = identity");
    }

    #[test]
    fn unknown_scenario_lists_the_registry() {
        let err = CliArgs::from_slice(&args(&["bin", "--scenario", "flashcrowd"])).unwrap_err();
        assert!(err.contains("unknown scenario \"flashcrowd\""), "{err}");
        for name in geoplace_scenarios::names() {
            assert!(err.contains(name), "listing must mention {name}: {err}");
        }
    }

    #[test]
    fn malformed_cli_flags_are_errors() {
        assert!(CliArgs::from_slice(&args(&["bin", "--scenario"])).is_err());
        assert!(CliArgs::from_slice(&args(&["bin", "--seed", "nope"])).is_err());
        assert!(CliArgs::from_slice(&args(&["bin", "--seed"])).is_err());
    }

    #[test]
    fn unknown_flag_errors_name_the_offender() {
        // The shared vocabulary passes clean…
        assert!(check_unknown_flags(&args(&["bin", "--bench", "--seed", "7"]), BASE_FLAGS).is_ok());
        // …a typo names itself…
        let err = check_unknown_flags(&args(&["bin", "--sede", "7"]), BASE_FLAGS).unwrap_err();
        assert!(err.contains("unknown flag --sede"), "{err}");
        // …a dangling value flag names itself…
        let err = check_unknown_flags(&args(&["bin", "--scenario"]), BASE_FLAGS).unwrap_err();
        assert!(err.contains("--scenario requires a value"), "{err}");
        // …and a stray positional is rejected too.
        let err = check_unknown_flags(&args(&["bin", "oops"]), BASE_FLAGS).unwrap_err();
        assert!(err.contains("\"oops\""), "{err}");
    }

    #[test]
    fn extras_extend_the_flag_vocabulary() {
        let mut known: Vec<(&str, bool)> = BASE_FLAGS.to_vec();
        known.extend_from_slice(&[("--slots", true), ("--external", false)]);
        assert!(check_unknown_flags(
            &args(&["bin", "--bench", "--slots", "12", "--external"]),
            &known
        )
        .is_ok());
        let err = check_unknown_flags(&args(&["bin", "--slots"]), &known).unwrap_err();
        assert!(err.contains("--slots requires a value"), "{err}");
        // A scenario-name value that looks like a word is consumed, not
        // mistaken for a positional.
        assert!(
            check_unknown_flags(&args(&["bin", "--scenario", "churn_storm"]), BASE_FLAGS).is_ok()
        );
    }

    #[test]
    fn quick_matrix_cells_are_valid_and_short() {
        for spec in geoplace_scenarios::registry() {
            for seed in QUICK_MATRIX_SEEDS {
                let config = quick_matrix_config(&spec, seed);
                assert!(config.validate().is_ok(), "{} seed {seed}", spec.name);
                assert_eq!(config.horizon_slots, QUICK_MATRIX_SLOTS);
            }
        }
    }

    #[test]
    fn quick_matrix_actually_perturbs_every_preset() {
        // Every non-control preset must change the world *within the
        // quick horizon* — an event window that opens after slot 12
        // would make its golden rows silently equal to paper's.
        let control = quick_matrix_config(&geoplace_scenarios::presets::paper(), 42);
        for spec in geoplace_scenarios::registry().into_iter().skip(1) {
            let config = quick_matrix_config(&spec, 42);
            assert_ne!(
                config, control,
                "{} is inert in the quick matrix",
                spec.name
            );
            let timeline_active = config
                .timeline
                .events()
                .iter()
                .any(|e| e.start_slot < QUICK_MATRIX_SLOTS);
            let fleet_active = config
                .fleet
                .arrivals
                .bursts
                .iter()
                .any(|b| b.start_slot < QUICK_MATRIX_SLOTS)
                || config
                    .fleet
                    .arrivals
                    .cohorts
                    .iter()
                    .any(|c| c.slot < QUICK_MATRIX_SLOTS)
                || config
                    .fleet
                    .arrivals
                    .scripted
                    .iter()
                    .any(|s| s.slot < QUICK_MATRIX_SLOTS)
                || !config.fleet.arrivals.mix.is_empty()
                || !config.fleet.arrivals.day_rate_factors.is_empty()
                || config.fleet.arrivals.groups_per_slot != control.fleet.arrivals.groups_per_slot;
            assert!(
                timeline_active || fleet_active,
                "{}: no perturbation opens before slot {QUICK_MATRIX_SLOTS}",
                spec.name
            );
        }
    }

    #[test]
    fn golden_rows_are_tab_separated() {
        let row = golden_row("paper", PolicyKind::Proposed, 42, "00ff");
        assert_eq!(row, "paper\tProposed\t42\t00ff");
    }

    #[test]
    fn stress_scale_uses_sparse_pipeline() {
        let config = Scale::Stress.config(1);
        assert!(config
            .sparsity
            .use_sparse(config.fleet.arrivals.expected_population() as usize));
        assert_eq!(config.horizon_slots, 24);
        assert!(stress_proposed_config().local.probe_limit < usize::MAX);
    }

    #[test]
    fn proposed_config_bounds_probes_only_at_sparse_scales() {
        // Dense-scale scenarios keep the exact first-fit scan; sparse-
        // scale ones (stress, paper) get the bounded probe budget — via
        // run_policy, so every repro binary's --stress is covered.
        let bench = Scale::Bench.config(1);
        assert_eq!(proposed_config_for(&bench).local.probe_limit, usize::MAX);
        let stress = Scale::Stress.config(1);
        assert_eq!(
            proposed_config_for(&stress).local.probe_limit,
            stress_proposed_config().local.probe_limit
        );
        let paper = Scale::Paper.config(1);
        assert!(proposed_config_for(&paper).local.probe_limit < usize::MAX);
    }

    #[test]
    fn repro_scale_shrinks_the_fleet() {
        let paper = Scale::Paper.config(1);
        let repro = Scale::Repro.config(1);
        assert!(repro.dcs[0].servers < paper.dcs[0].servers);
        assert!(
            repro.fleet.arrivals.expected_population() < paper.fleet.arrivals.expected_population()
        );
        assert_eq!(
            repro.horizon_slots, paper.horizon_slots,
            "keep the weekly horizon"
        );
    }

    #[test]
    fn policy_names_match_paper_legends() {
        let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["Proposed", "Ener-aware", "Pri-aware", "Net-aware"]);
    }

    #[test]
    fn run_policy_smoke() {
        let mut config = Scale::Bench.config(3);
        config.horizon_slots = 2;
        for kind in PolicyKind::ALL {
            let report = run_policy(&config, kind);
            assert_eq!(report.policy, kind.name());
            assert_eq!(report.hourly.len(), 2);
        }
    }
}
