//! The `geoplace-serve` session: an online placement service over
//! line-delimited JSON.
//!
//! One [`Session`] wraps a [`SlotStepper`] plus a policy and a
//! [`DeltaSource`], and maps protocol commands onto the slot lifecycle:
//!
//! | Command | Phase | Effect |
//! |---|---|---|
//! | `advance` | awaiting advance | cross one slot boundary (`advance_world`) |
//! | `decide` | awaiting decision | run the policy over `observe`, then `apply` |
//! | `get_state` | any | phase, progress and (mid-decision) per-DC facts |
//! | `metrics` | any | report totals + digest so far |
//! | `shutdown` | any | final digest, then the transport should close |
//! | `vm_arrive` | external mode | queue an arrival for the next `advance` |
//! | `vm_depart` | external mode | queue a departure for the next `advance` |
//! | `wire_traffic` | external mode | queue a traffic pair for the next `advance` |
//! | `checkpoint` | awaiting advance | write a versioned snapshot to `path` |
//! | `restore` | awaiting advance | replace the run with the snapshot at `path` |
//!
//! Checkpoints carry the engine state, the policy's warm-start state and
//! the session's own state (source cursor / pending events, external-id
//! watermark) in one `.gpck` container — see the `geoplace_types::snap`
//! codec and `geoplace_dcsim::checkpoint`. A malformed snapshot fails a
//! `restore` with a structured error naming the bad section, and the
//! running session is left exactly as it was (the restore commits only
//! after every section validated into fresh state). With
//! [`Session::with_checkpointing`] the session also drops
//! `ckpt_slotNNNNN.gpck` files into a directory every N completed slots.
//!
//! Besides the synthetic and external modes, [`Session::with_trace`]
//! replays a parse-validated trace file (`--trace PATH` on the binary):
//! arrivals and traffic wiring come from the committed rows, and
//! `get_state` reports `"source":"trace"` plus the unplayed row count.
//!
//! Every response is a single JSON line: `{"ok":true,...}` on success,
//! `{"ok":false,"error":"..."}` otherwise. A malformed or mistimed
//! command never kills the session — the stepper's phase machine rejects
//! it and the slot stays drivable, which is what lets one long-running
//! process serve thousands of commands.
//!
//! The session is transport-agnostic (the `geoplace-serve` binary feeds
//! it stdin lines; tests and the service benchmark feed it in-process),
//! and digest-faithful: a scripted `advance`/`decide` session over a
//! synthetic world produces bit-for-bit the digest `Simulator::run`
//! produces for the same configuration and policy.

use crate::json::{object, Value};
use crate::scenario::PolicyKind;
use geoplace_dcsim::checkpoint::{checkpoint_path, checkpoint_with_policy, restore_with_policy};
use geoplace_dcsim::config::ScenarioConfig;
use geoplace_dcsim::engine::Scenario;
use geoplace_dcsim::policy::GlobalPolicy;
use geoplace_dcsim::stepper::SlotStepper;
use geoplace_types::snap::{Checkpoint, SnapWriter, Snapshot};
use geoplace_types::VmId;
use geoplace_workload::fleet::{ExternalArrival, ExternalPair};
use geoplace_workload::source::{ExternalDeltaSource, SyntheticSource, TraceSource};
use geoplace_workload::trace::TraceKind;
use geoplace_workload::tracefile::TraceRow;
use std::path::{Path, PathBuf};

/// Where slot boundaries get their fleet changes from.
enum Source {
    /// The scenario's own synthetic arrival/departure process.
    Synthetic(SyntheticSource),
    /// Externally announced events (`vm_arrive` / `vm_depart` /
    /// `wire_traffic`), applied at the next `advance`.
    External(ExternalDeltaSource),
    /// Rows of a parse-validated trace file (`--trace`), replayed slot
    /// by slot; external fleet commands are rejected in this mode.
    Trace(TraceSource),
}

impl Source {
    fn name(&self) -> &'static str {
        match self {
            Source::Synthetic(_) => "synthetic",
            Source::External(_) => "external",
            Source::Trace(_) => "trace",
        }
    }
}

/// One response line plus whether the session asked the transport to
/// close.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The single-line JSON response.
    pub line: String,
    /// `true` after a successful `shutdown` command.
    pub shutdown: bool,
}

/// A long-running placement service over one scenario.
pub struct Session {
    stepper: SlotStepper,
    policy: Box<dyn GlobalPolicy>,
    source: Source,
    /// Next id handed to an external arrival; kept monotonic so several
    /// `vm_arrive` commands between two advances never collide.
    next_external_id: u32,
    /// The scenario and policy selection, kept so `restore` can rebuild a
    /// fresh world to validate a snapshot into before committing it.
    config: ScenarioConfig,
    kind: PolicyKind,
    /// Auto-checkpoint cadence: every N completed slots, into this
    /// directory ([`Session::with_checkpointing`]).
    auto_checkpoint: Option<(u32, PathBuf)>,
}

impl Session {
    /// Builds the world and the policy. `external` selects the event
    /// source: `false` runs the scenario's synthetic fleet process,
    /// `true` starts an empty event queue fed by `vm_arrive` & friends
    /// (natural lifetime expiries still happen on their own).
    pub fn new(
        config: &ScenarioConfig,
        kind: PolicyKind,
        external: bool,
    ) -> Result<Session, String> {
        let source = if external {
            Source::External(ExternalDeltaSource::new())
        } else {
            Source::Synthetic(SyntheticSource)
        };
        Session::build(config, kind, source)
    }

    /// Builds a session that replays a parse-validated trace (the
    /// output of [`geoplace_workload::tracefile::load_trace`]): fleet
    /// changes come from the trace rows — not the synthetic process,
    /// and not external commands, which this mode rejects.
    pub fn with_trace(
        config: &ScenarioConfig,
        kind: PolicyKind,
        rows: Vec<TraceRow>,
    ) -> Result<Session, String> {
        Session::build(config, kind, Source::Trace(TraceSource::new(rows)))
    }

    fn build(config: &ScenarioConfig, kind: PolicyKind, source: Source) -> Result<Session, String> {
        let scenario = Scenario::build(config).map_err(|e| e.to_string())?;
        let stepper = SlotStepper::new(scenario);
        Ok(Session {
            stepper,
            policy: make_policy(config, kind),
            source,
            next_external_id: 0,
            config: config.clone(),
            kind,
            auto_checkpoint: None,
        })
    }

    /// Enables auto-checkpointing: after every `every` completed slots a
    /// `ckpt_slotNNNNN.gpck` file is written into `dir` (created here if
    /// missing). Maps the `--checkpoint-every N --checkpoint-dir PATH`
    /// flags of the binary.
    pub fn with_checkpointing(mut self, every: u32, dir: PathBuf) -> Result<Session, String> {
        if every == 0 {
            return Err("checkpoint interval must be at least 1 slot (got 0)".into());
        }
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create checkpoint directory {}: {e}", dir.display()))?;
        self.auto_checkpoint = Some((every, dir));
        Ok(self)
    }

    /// The underlying stepper (inspection from tests and benches).
    pub fn stepper(&self) -> &SlotStepper {
        &self.stepper
    }

    /// The served policy's display name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// The report digest over the slots completed so far.
    pub fn digest(&self) -> String {
        self.stepper.report_with_policy(self.policy.name()).digest()
    }

    /// Handles one protocol line. Always returns a response; errors are
    /// structured (`{"ok":false,...}`), never fatal.
    pub fn handle_line(&mut self, line: &str) -> Response {
        match self.dispatch(line) {
            Ok((value, shutdown)) => Response {
                line: value.render(),
                shutdown,
            },
            Err(error) => Response {
                line: object(vec![("ok", Value::Bool(false)), ("error", error.into())]).render(),
                shutdown: false,
            },
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<(Value, bool), String> {
        let request = Value::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let cmd = request
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or("missing string field \"cmd\"")?;
        let value = match cmd {
            "advance" => self.advance()?,
            "decide" => self.decide()?,
            "get_state" => self.get_state(),
            "metrics" => self.metrics(),
            "shutdown" => return Ok((self.shutdown(), true)),
            "vm_arrive" => self.vm_arrive(&request)?,
            "vm_depart" => self.vm_depart(&request)?,
            "wire_traffic" => self.wire_traffic(&request)?,
            "checkpoint" => self.checkpoint(&request)?,
            "restore" => self.restore(&request)?,
            other => return Err(format!("unknown command {other:?}")),
        };
        Ok((value, false))
    }

    fn advance(&mut self) -> Result<Value, String> {
        let delta = match &mut self.source {
            Source::Synthetic(source) => self.stepper.advance_world(source),
            Source::External(source) => self.stepper.advance_world(source),
            Source::Trace(source) => self.stepper.advance_world(source),
        }
        .map_err(|e| e.to_string())?;
        let snapshot = self.stepper.observe();
        Ok(object(vec![
            ("ok", Value::Bool(true)),
            ("slot", self.stepper.current_slot().0.into()),
            ("arrived", delta.arrived.len().into()),
            ("departed", delta.departed.len().into()),
            ("active_vms", snapshot.vm_count().into()),
        ]))
    }

    fn decide(&mut self) -> Result<Value, String> {
        if !self.stepper.awaiting_decision() {
            return Err("no slot is awaiting a decision: send advance first".into());
        }
        let decision = self.policy.decide(&self.stepper.observe());
        let metrics = self.stepper.apply(decision).map_err(|e| e.to_string())?;
        let record = metrics.record;
        let mut members = vec![
            ("ok", Value::Bool(true)),
            ("slot", metrics.slot.0.into()),
            ("cost_eur", record.cost_eur.into()),
            ("total_energy_j", record.total_energy_j.into()),
            ("grid_energy_j", record.grid_energy_j.into()),
            ("migrations", record.migrations.into()),
            ("migration_volume_gb", record.migration_volume_gb.into()),
            ("active_vms", record.active_vms.into()),
            ("active_servers", record.active_servers.into()),
            ("response_worst_s", record.response_worst_s.into()),
            ("state_hash", hex64(metrics.state_hash).into()),
            ("done", self.stepper.is_done().into()),
        ];
        // Auto-checkpoint at the cadence boundary; a failed write is
        // reported in-band (the slot itself already applied cleanly).
        if let Some((every, dir)) = &self.auto_checkpoint {
            let completed = metrics.slot.0 + 1;
            if completed % *every == 0 && !self.stepper.is_done() {
                let path = checkpoint_path(dir, completed);
                match self.write_checkpoint(&path) {
                    Ok(()) => members.push(("checkpoint", path.display().to_string().into())),
                    Err(e) => members.push(("checkpoint_error", e.into())),
                }
            }
        }
        Ok(object(members))
    }

    /// Builds the full session checkpoint: engine + policy sections from
    /// `geoplace_dcsim::checkpoint`, plus a `serve` section holding the
    /// event source's state (pending external batch / trace cursor) and
    /// the external-id watermark.
    fn build_checkpoint(&self) -> Result<Checkpoint, String> {
        let mut ck =
            checkpoint_with_policy(&self.stepper, &*self.policy).map_err(|e| e.to_string())?;
        let mut w = SnapWriter::new();
        w.write_str(self.source.name());
        match &self.source {
            Source::Synthetic(_) => {}
            Source::External(source) => source.save_state(&mut w),
            Source::Trace(source) => source.save_state(&mut w),
        }
        w.write_u32(self.next_external_id);
        ck.add_section("serve", w.into_bytes());
        Ok(ck)
    }

    fn write_checkpoint(&self, path: &Path) -> Result<(), String> {
        let ck = self.build_checkpoint()?;
        geoplace_dcsim::checkpoint::write_file(&ck, path).map_err(|e| e.to_string())
    }

    fn checkpoint(&mut self, request: &Value) -> Result<Value, String> {
        let path = require_str(request, "path")?;
        let ck = self.build_checkpoint()?;
        let bytes = ck.encode().len();
        geoplace_dcsim::checkpoint::write_file(&ck, Path::new(&path)).map_err(|e| e.to_string())?;
        Ok(object(vec![
            ("ok", Value::Bool(true)),
            ("path", path.into()),
            ("slot", ck.slot.into()),
            ("state_hash", hex64(ck.state_hash).into()),
            ("bytes", bytes.into()),
        ]))
    }

    /// Replaces the running session with the snapshot at `path`. Every
    /// section is validated into *fresh* state first (a rebuilt world, a
    /// fresh policy, a staged copy of the source), and the session is
    /// only swapped once all of them restored cleanly — so a truncated or
    /// corrupted snapshot returns a structured error naming the bad
    /// section and leaves the running session exactly as it was.
    fn restore(&mut self, request: &Value) -> Result<Value, String> {
        let path = require_str(request, "path")?;
        let ck =
            geoplace_dcsim::checkpoint::read_file(Path::new(&path)).map_err(|e| e.to_string())?;
        // Stage the serve section: source identity, source state, watermark.
        let mut r = ck.section("serve").map_err(|e| e.to_string())?;
        let stored_source = r.read_str().map_err(|e| e.to_string())?;
        if stored_source != self.source.name() {
            return Err(format!(
                "checkpoint was taken under source {stored_source:?}, \
                 not this session's {:?}",
                self.source.name()
            ));
        }
        let staged_source = match &self.source {
            Source::Synthetic(_) => Source::Synthetic(SyntheticSource),
            Source::External(source) => {
                let mut staged = source.clone();
                staged.restore_state(&mut r).map_err(|e| e.to_string())?;
                Source::External(staged)
            }
            Source::Trace(source) => {
                let mut staged = source.clone();
                staged.restore_state(&mut r).map_err(|e| e.to_string())?;
                Source::Trace(staged)
            }
        };
        let next_external_id = r.read_u32().map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())?;
        // Stage engine + policy into a freshly built world.
        let scenario = Scenario::build(&self.config).map_err(|e| e.to_string())?;
        let mut stepper = SlotStepper::new(scenario);
        let mut policy = make_policy(&self.config, self.kind);
        restore_with_policy(&mut stepper, &mut *policy, &ck).map_err(|e| e.to_string())?;
        // Everything validated — commit.
        self.stepper = stepper;
        self.policy = policy;
        self.source = staged_source;
        self.next_external_id = next_external_id;
        Ok(object(vec![
            ("ok", Value::Bool(true)),
            ("path", path.into()),
            ("slot", self.stepper.current_slot().0.into()),
            ("completed_slots", self.stepper.completed_slots().into()),
            ("state_hash", hex64(self.stepper.state_hash()).into()),
        ]))
    }

    fn get_state(&self) -> Value {
        let fleet_size = self.stepper.scenario().fleet.active().len();
        let mut members = vec![
            ("ok", Value::Bool(true)),
            ("slot", self.stepper.current_slot().0.into()),
            ("completed_slots", self.stepper.completed_slots().into()),
            ("horizon", self.stepper.horizon().into()),
            ("awaiting_decision", self.stepper.awaiting_decision().into()),
            ("done", self.stepper.is_done().into()),
            ("active_vms", fleet_size.into()),
            ("policy", self.policy.name().into()),
            ("source", self.source.name().into()),
            ("state_hash", hex64(self.stepper.state_hash()).into()),
            (
                "external",
                matches!(self.source, Source::External(_)).into(),
            ),
        ];
        match &self.source {
            Source::External(source) => {
                let pending = source.pending();
                members.push((
                    "pending",
                    object(vec![
                        ("arrivals", pending.arrivals.len().into()),
                        ("departures", pending.departures.len().into()),
                        ("traffic", pending.traffic.len().into()),
                    ]),
                ));
            }
            Source::Trace(source) => {
                members.push(("trace_remaining", source.remaining().into()));
            }
            Source::Synthetic(_) => {}
        }
        if self.stepper.awaiting_decision() {
            let dcs: Vec<Value> = self
                .stepper
                .dc_infos()
                .iter()
                .map(|dc| {
                    object(vec![
                        ("id", u32::from(dc.id.0).into()),
                        ("servers", dc.servers.into()),
                        ("outaged", dc.outaged.into()),
                        ("price_eur_per_kwh", dc.price.0.into()),
                        ("price_level", format!("{:?}", dc.price_level).into()),
                        ("pue", dc.pue.into()),
                        ("battery_available_j", dc.battery_available.0.into()),
                        ("pv_forecast_j", dc.pv_forecast.0.into()),
                    ])
                })
                .collect();
            members.push(("dcs", Value::Array(dcs)));
        }
        object(members)
    }

    fn metrics(&self) -> Value {
        let report = self.stepper.report_with_policy(self.policy.name());
        let totals = report.totals();
        object(vec![
            ("ok", Value::Bool(true)),
            ("slots", report.hourly.len().into()),
            ("digest", report.digest().into()),
            (
                "totals",
                object(vec![
                    ("cost_eur", totals.cost_eur.into()),
                    ("energy_gj", totals.energy_gj.into()),
                    ("grid_energy_gj", totals.grid_energy_gj.into()),
                    ("migrations", totals.migrations.into()),
                    ("migration_volume_gb", totals.migration_volume_gb.into()),
                    ("mean_response_s", totals.mean_response_s.into()),
                    ("worst_response_s", totals.worst_response_s.into()),
                    ("p95_response_s", totals.p95_response_s.into()),
                    ("mean_active_servers", totals.mean_active_servers.into()),
                ]),
            ),
        ])
    }

    fn shutdown(&self) -> Value {
        let report = self.stepper.report_with_policy(self.policy.name());
        object(vec![
            ("ok", Value::Bool(true)),
            ("shutdown", Value::Bool(true)),
            ("slots", report.hourly.len().into()),
            ("digest", report.digest().into()),
        ])
    }

    fn external_source(&mut self) -> Result<&mut ExternalDeltaSource, String> {
        match &mut self.source {
            Source::External(source) => Ok(source),
            Source::Synthetic(_) | Source::Trace(_) => {
                Err("external fleet commands require --external mode".into())
            }
        }
    }

    fn vm_arrive(&mut self, request: &Value) -> Result<Value, String> {
        let memory_gb = require_f64(request, "memory_gb")?;
        if !memory_gb.is_finite() || memory_gb <= 0.0 {
            return Err(format!(
                "memory_gb must be finite and positive, got {memory_gb}"
            ));
        }
        let lifetime_slots = require_u64(request, "lifetime_slots")?;
        let lifetime_slots =
            u32::try_from(lifetime_slots).map_err(|_| "lifetime_slots out of range".to_string())?;
        let kind = match request.get("profile").map(|v| v.as_str()) {
            None => TraceKind::WebServing,
            Some(Some("web")) => TraceKind::WebServing,
            Some(Some("batch")) => TraceKind::Batch,
            Some(Some("hpc")) => TraceKind::Hpc,
            Some(other) => {
                return Err(format!(
                    "profile must be \"web\", \"batch\" or \"hpc\", got {other:?}"
                ))
            }
        };
        let id = {
            let fresh = self.stepper.scenario().fleet.fresh_vm_id().0;
            let id = self.next_external_id.max(fresh);
            self.next_external_id = id + 1;
            VmId(id)
        };
        let trace_seed = match request.get("trace_seed") {
            None => u64::from(id.0),
            Some(v) => v.as_u64().ok_or("trace_seed must be an unsigned integer")?,
        };
        let source = self.external_source()?;
        source.queue_arrival(ExternalArrival {
            id,
            memory_gb,
            lifetime_slots,
            kind,
            trace_seed,
        });
        Ok(object(vec![
            ("ok", Value::Bool(true)),
            ("id", id.0.into()),
            ("pending_arrivals", source.pending().arrivals.len().into()),
        ]))
    }

    fn vm_depart(&mut self, request: &Value) -> Result<Value, String> {
        let id = require_u64(request, "id")?;
        let id = u32::try_from(id).map_err(|_| "id out of range".to_string())?;
        let source = self.external_source()?;
        source.queue_departure(VmId(id));
        Ok(object(vec![
            ("ok", Value::Bool(true)),
            (
                "pending_departures",
                source.pending().departures.len().into(),
            ),
        ]))
    }

    fn wire_traffic(&mut self, request: &Value) -> Result<Value, String> {
        let a = require_u64(request, "a")?;
        let b = require_u64(request, "b")?;
        let a = u32::try_from(a).map_err(|_| "a out of range".to_string())?;
        let b = u32::try_from(b).map_err(|_| "b out of range".to_string())?;
        let a_to_b_mb = require_f64(request, "a_to_b_mb")?;
        let b_to_a_mb = require_f64(request, "b_to_a_mb")?;
        let source = self.external_source()?;
        source.queue_traffic(ExternalPair {
            a: VmId(a),
            b: VmId(b),
            a_to_b_mb,
            b_to_a_mb,
        });
        Ok(object(vec![
            ("ok", Value::Bool(true)),
            ("pending_traffic", source.pending().traffic.len().into()),
        ]))
    }
}

/// Builds the selected policy fresh over a configuration — used both at
/// session construction and to stage a `restore` target.
fn make_policy(config: &ScenarioConfig, kind: PolicyKind) -> Box<dyn GlobalPolicy> {
    crate::scenario::policy_for(config, kind)
}

/// A u64 state hash as the protocol's 16-digit hex string — JSON numbers
/// are f64 and cannot carry 64 bits faithfully.
fn hex64(hash: u64) -> String {
    format!("{hash:016x}")
}

fn require_str(request: &Value, key: &str) -> Result<String, String> {
    request
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn require_f64(request: &Value, key: &str) -> Result<f64, String> {
    request
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn require_u64(request: &Value, key: &str) -> Result<u64, String> {
    request
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing unsigned-integer field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::run_policy;
    use geoplace_dcsim::config::ScenarioConfig;

    fn tiny() -> ScenarioConfig {
        let mut config = ScenarioConfig::scaled(11);
        config.horizon_slots = 3;
        config
    }

    fn ok(response: &Response) -> Result<Value, String> {
        let value = Value::parse(&response.line)?;
        if value.get("ok").and_then(Value::as_bool) != Some(true) {
            return Err(format!("expected ok:true, got {}", response.line));
        }
        Ok(value)
    }

    fn err(response: &Response) -> Result<String, String> {
        let value = Value::parse(&response.line)?;
        if value.get("ok").and_then(Value::as_bool) != Some(false) {
            return Err(format!("expected ok:false, got {}", response.line));
        }
        value
            .get("error")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("no error field in {}", response.line))
    }

    #[test]
    fn scripted_session_matches_run_digest() -> Result<(), String> {
        let config = tiny();
        let mut session = Session::new(&config, PolicyKind::Proposed, false)?;
        for _ in 0..config.horizon_slots {
            ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
            ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
        }
        let response = session.handle_line(r#"{"cmd":"shutdown"}"#);
        assert!(response.shutdown);
        let digest = ok(&response)?
            .get("digest")
            .and_then(Value::as_str)
            .ok_or("no digest in shutdown response")?
            .to_owned();
        assert_eq!(digest, run_policy(&config, PolicyKind::Proposed).digest());
        Ok(())
    }

    #[test]
    fn malformed_and_mistimed_commands_are_structured_errors() -> Result<(), String> {
        let mut session = Session::new(&tiny(), PolicyKind::NetAware, false)?;
        assert!(err(&session.handle_line("not json"))?.contains("malformed JSON"));
        assert!(err(&session.handle_line(r#"{"no_cmd":1}"#))?.contains("cmd"));
        assert!(err(&session.handle_line(r#"{"cmd":"frobnicate"}"#))?.contains("unknown command"));
        // decide before advance, then double advance.
        assert!(err(&session.handle_line(r#"{"cmd":"decide"}"#))?.contains("advance"));
        ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        assert!(err(&session.handle_line(r#"{"cmd":"advance"}"#))?.contains("apply"));
        // External commands are rejected in synthetic mode.
        assert!(err(
            &session.handle_line(r#"{"cmd":"vm_arrive","memory_gb":2.0,"lifetime_slots":4}"#)
        )?
        .contains("--external"));
        // The session is still alive and drivable.
        ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
        assert_eq!(session.stepper().completed_slots(), 1);
        Ok(())
    }

    #[test]
    fn get_state_reports_phase_and_dcs() -> Result<(), String> {
        let mut session = Session::new(&tiny(), PolicyKind::EnerAware, false)?;
        let state = ok(&session.handle_line(r#"{"cmd":"get_state"}"#))?;
        assert_eq!(
            state.get("awaiting_decision").and_then(Value::as_bool),
            Some(false)
        );
        assert_eq!(state.get("dcs"), None, "no DC facts before an advance");
        ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        let state = ok(&session.handle_line(r#"{"cmd":"get_state"}"#))?;
        assert_eq!(
            state.get("awaiting_decision").and_then(Value::as_bool),
            Some(true)
        );
        let dcs = state
            .get("dcs")
            .and_then(Value::as_array)
            .ok_or("no dcs array mid-decision")?;
        assert_eq!(dcs.len(), 3);
        assert!(
            dcs[0]
                .get("price_eur_per_kwh")
                .and_then(Value::as_f64)
                .ok_or("no price field")?
                > 0.0
        );
        Ok(())
    }

    #[test]
    fn external_session_queues_and_applies_events() -> Result<(), String> {
        let mut config = tiny();
        config.fleet.arrivals.groups_per_slot = 0.0;
        config.horizon_slots = 4;
        let mut session = Session::new(&config, PolicyKind::Proposed, true)?;
        ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
        let response = ok(&session.handle_line(
            r#"{"cmd":"vm_arrive","memory_gb":4.0,"lifetime_slots":8,"profile":"batch"}"#,
        ))?;
        let id = response
            .get("id")
            .and_then(Value::as_u64)
            .ok_or("no id in vm_arrive response")?;
        let peer = session.stepper().scenario().fleet.active()[0].0;
        ok(&session.handle_line(&format!(
            r#"{{"cmd":"wire_traffic","a":{id},"b":{peer},"a_to_b_mb":9.0,"b_to_a_mb":2.0}}"#
        )))?;
        let advanced = ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        assert_eq!(advanced.get("arrived").and_then(Value::as_u64), Some(1));
        ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
        // Departing a never-seen VM is rejected at the boundary but the
        // session survives and the next advance (empty batch) succeeds.
        ok(&session.handle_line(r#"{"cmd":"vm_depart","id":4000000}"#))?;
        assert!(err(&session.handle_line(r#"{"cmd":"advance"}"#))?.contains("depart"));
        ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        Ok(())
    }

    #[test]
    fn trace_sessions_replay_the_file_and_reject_external_commands() -> Result<(), String> {
        use geoplace_workload::tracefile::{parse_trace, TRACE_HEADER};
        let mut config = tiny();
        config.fleet.arrivals.groups_per_slot = 0.0;
        let rows = parse_trace(&format!(
            "{TRACE_HEADER}\n\
             1,0,4.0,8,web,11,,,\n\
             1,1,2.0,8,batch,12,0,6.5,1.5\n\
             2,2,8.0,4,hpc,13,,,\n"
        ))?;
        let mut session = Session::with_trace(&config, PolicyKind::Proposed, rows)?;

        let state = ok(&session.handle_line(r#"{"cmd":"get_state"}"#))?;
        assert_eq!(state.get("source").and_then(Value::as_str), Some("trace"));
        assert_eq!(
            state.get("trace_remaining").and_then(Value::as_u64),
            Some(3)
        );

        // Slot 0 is the bootstrap boundary: trace rows start at slot 1.
        let advanced = ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        assert_eq!(advanced.get("arrived").and_then(Value::as_u64), Some(0));
        ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
        let advanced = ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        assert_eq!(advanced.get("arrived").and_then(Value::as_u64), Some(2));
        ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
        let state = ok(&session.handle_line(r#"{"cmd":"get_state"}"#))?;
        assert_eq!(
            state.get("trace_remaining").and_then(Value::as_u64),
            Some(1)
        );

        // Trace mode is closed-loop: manual fleet edits are rejected
        // with a structured error and the session stays drivable.
        assert!(err(
            &session.handle_line(r#"{"cmd":"vm_arrive","memory_gb":2.0,"lifetime_slots":4}"#)
        )?
        .contains("--external"));
        let advanced = ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        assert_eq!(advanced.get("arrived").and_then(Value::as_u64), Some(1));
        Ok(())
    }

    #[test]
    fn checkpoint_restore_resumes_to_the_reference_digest() -> Result<(), String> {
        let config = tiny();
        let path = std::env::temp_dir().join("geoplace_serve_ckpt_test.gpck");
        let mut session = Session::new(&config, PolicyKind::Proposed, false)?;
        ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
        let saved = ok(&session.handle_line(&format!(
            r#"{{"cmd":"checkpoint","path":{:?}}}"#,
            path.display().to_string()
        )))?;
        assert_eq!(saved.get("slot").and_then(Value::as_u64), Some(1));
        let saved_hash = saved
            .get("state_hash")
            .and_then(Value::as_str)
            .ok_or("no state_hash in checkpoint response")?
            .to_owned();
        // A *fresh* session restores the file and finishes the horizon.
        let mut resumed = Session::new(&config, PolicyKind::Proposed, false)?;
        let restored = ok(&resumed.handle_line(&format!(
            r#"{{"cmd":"restore","path":{:?}}}"#,
            path.display().to_string()
        )))?;
        assert_eq!(restored.get("slot").and_then(Value::as_u64), Some(1));
        assert_eq!(
            restored.get("state_hash").and_then(Value::as_str),
            Some(saved_hash.as_str()),
            "restore must land on the checkpointed state hash"
        );
        for _ in 1..config.horizon_slots {
            ok(&resumed.handle_line(r#"{"cmd":"advance"}"#))?;
            ok(&resumed.handle_line(r#"{"cmd":"decide"}"#))?;
        }
        assert_eq!(
            resumed.digest(),
            run_policy(&config, PolicyKind::Proposed).digest(),
            "resumed session must reproduce the uninterrupted digest"
        );
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn mid_slot_checkpoint_is_a_structured_error() -> Result<(), String> {
        let mut session = Session::new(&tiny(), PolicyKind::NetAware, false)?;
        ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        let message =
            err(&session.handle_line(r#"{"cmd":"checkpoint","path":"/tmp/unused.gpck"}"#))?;
        assert!(message.contains("mid-slot"), "{message}");
        // Session still drivable.
        ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
        Ok(())
    }

    #[test]
    fn bad_restores_leave_the_session_untouched() -> Result<(), String> {
        let config = tiny();
        let dir = std::env::temp_dir();
        let good = dir.join("geoplace_serve_good.gpck");
        let truncated = dir.join("geoplace_serve_truncated.gpck");
        let bumped = dir.join("geoplace_serve_bumped.gpck");
        let mut session = Session::new(&config, PolicyKind::Proposed, false)?;
        ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
        ok(&session.handle_line(&format!(
            r#"{{"cmd":"checkpoint","path":{:?}}}"#,
            good.display().to_string()
        )))?;
        let bytes = std::fs::read(&good).map_err(|e| e.to_string())?;
        std::fs::write(&truncated, &bytes[..bytes.len() - 7]).map_err(|e| e.to_string())?;
        let mut wrong = bytes.clone();
        wrong[4] = 0xFF; // format-version byte
        std::fs::write(&bumped, &wrong).map_err(|e| e.to_string())?;

        let hash_before = session.stepper().state_hash();
        let message = err(&session.handle_line(&format!(
            r#"{{"cmd":"restore","path":{:?}}}"#,
            truncated.display().to_string()
        )))?;
        assert!(message.contains("snapshot"), "{message}");
        let message = err(&session.handle_line(&format!(
            r#"{{"cmd":"restore","path":{:?}}}"#,
            bumped.display().to_string()
        )))?;
        assert!(message.contains("version"), "{message}");
        let message =
            err(&session.handle_line(r#"{"cmd":"restore","path":"/no/such/file.gpck"}"#))?;
        assert!(message.contains("/no/such/file.gpck"), "{message}");
        // The failed restores changed nothing and the session drives on.
        assert_eq!(session.stepper().state_hash(), hash_before);
        ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
        ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
        for path in [&good, &truncated, &bumped] {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    #[test]
    fn auto_checkpointing_drops_files_at_the_cadence() -> Result<(), String> {
        let mut config = tiny();
        config.horizon_slots = 4;
        let dir = std::env::temp_dir().join("geoplace_serve_auto_ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        let mut session = Session::new(&config, PolicyKind::EnerAware, false)?
            .with_checkpointing(2, dir.clone())?;
        assert!(Session::new(&config, PolicyKind::EnerAware, false)?
            .with_checkpointing(0, dir.clone())
            .is_err());
        let mut checkpoint_lines = 0;
        for _ in 0..config.horizon_slots {
            ok(&session.handle_line(r#"{"cmd":"advance"}"#))?;
            let decided = ok(&session.handle_line(r#"{"cmd":"decide"}"#))?;
            if decided.get("checkpoint").is_some() {
                checkpoint_lines += 1;
            }
        }
        assert_eq!(
            checkpoint_lines, 1,
            "slot 2 only; the final slot is not saved"
        );
        assert!(dir.join("ckpt_slot00002.gpck").exists());
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn consecutive_arrivals_get_distinct_ids() -> Result<(), String> {
        let mut session = Session::new(&tiny(), PolicyKind::Proposed, true)?;
        let a =
            ok(&session.handle_line(r#"{"cmd":"vm_arrive","memory_gb":1.0,"lifetime_slots":2}"#))?
                .get("id")
                .and_then(Value::as_u64)
                .ok_or("no id")?;
        let b =
            ok(&session.handle_line(r#"{"cmd":"vm_arrive","memory_gb":1.0,"lifetime_slots":2}"#))?
                .get("id")
                .and_then(Value::as_u64)
                .ok_or("no id")?;
        assert_ne!(a, b);
        Ok(())
    }
}
