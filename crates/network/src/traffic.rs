//! Aggregated DC-to-DC traffic matrices.
//!
//! The latency model (Eq. 1–4) consumes per-DC-pair volumes `Vol^{i,j}`:
//! the total data DC `i` must ship to DC `j` during one slot. This module
//! aggregates VM-pair volumes into that matrix given a placement.

use geoplace_types::units::Megabytes;
use geoplace_types::DcId;
use serde::{Deserialize, Serialize};

/// Dense matrix of directed DC-to-DC volumes for one slot.
///
/// # Examples
///
/// ```
/// use geoplace_network::traffic::TrafficMatrix;
/// use geoplace_types::{units::Megabytes, DcId};
///
/// let mut m = TrafficMatrix::new(3);
/// m.add(DcId(0), DcId(1), Megabytes(500.0));
/// m.add(DcId(0), DcId(1), Megabytes(250.0));
/// assert_eq!(m.volume(DcId(0), DcId(1)), Megabytes(750.0));
/// assert_eq!(m.volume(DcId(1), DcId(0)), Megabytes(0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    volumes: Vec<Megabytes>,
}

impl TrafficMatrix {
    /// Creates an all-zero matrix over `n` DCs.
    pub fn new(n: usize) -> Self {
        TrafficMatrix {
            n,
            volumes: vec![Megabytes::ZERO; n * n],
        }
    }

    /// Number of DCs.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix covers no DCs.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `volume` to the directed `from → to` cell. Intra-DC volume
    /// (`from == to`) is tracked too — it loads only the local link.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add(&mut self, from: DcId, to: DcId, volume: Megabytes) {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "dc id out of range"
        );
        self.volumes[from.index() * self.n + to.index()] += volume;
    }

    /// The directed volume `from → to`.
    pub fn volume(&self, from: DcId, to: DcId) -> Megabytes {
        self.volumes[from.index() * self.n + to.index()]
    }

    /// Total volume arriving at `to` from *other* DCs (Eq. 3's sum).
    pub fn incoming(&self, to: DcId) -> Megabytes {
        (0..self.n)
            .filter(|&i| i != to.index())
            .map(|i| self.volumes[i * self.n + to.index()])
            .sum()
    }

    /// Total volume leaving `from` towards *other* DCs.
    pub fn outgoing(&self, from: DcId) -> Megabytes {
        (0..self.n)
            .filter(|&j| j != from.index())
            .map(|j| self.volumes[from.index() * self.n + j])
            .sum()
    }

    /// Total inter-DC volume (excludes the diagonal).
    pub fn total_inter_dc(&self) -> Megabytes {
        let mut total = Megabytes::ZERO;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    total += self.volumes[i * self.n + j];
                }
            }
        }
        total
    }

    /// The largest directed inter-DC cell — the "hottest" link.
    pub fn max_link(&self) -> Megabytes {
        let mut max = Megabytes::ZERO;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    max = max.max(self.volumes[i * self.n + j]);
                }
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> TrafficMatrix {
        let mut m = TrafficMatrix::new(3);
        m.add(DcId(0), DcId(1), Megabytes(100.0));
        m.add(DcId(0), DcId(2), Megabytes(50.0));
        m.add(DcId(1), DcId(2), Megabytes(25.0));
        m.add(DcId(2), DcId(2), Megabytes(999.0)); // intra-DC
        m
    }

    #[test]
    fn incoming_excludes_diagonal() {
        let m = filled();
        assert_eq!(m.incoming(DcId(2)), Megabytes(75.0));
        assert_eq!(m.incoming(DcId(0)), Megabytes::ZERO);
    }

    #[test]
    fn outgoing_excludes_diagonal() {
        let m = filled();
        assert_eq!(m.outgoing(DcId(0)), Megabytes(150.0));
        assert_eq!(m.outgoing(DcId(2)), Megabytes::ZERO);
    }

    #[test]
    fn totals_and_max() {
        let m = filled();
        assert_eq!(m.total_inter_dc(), Megabytes(175.0));
        assert_eq!(m.max_link(), Megabytes(100.0));
    }

    #[test]
    fn add_accumulates() {
        let mut m = TrafficMatrix::new(2);
        m.add(DcId(0), DcId(1), Megabytes(1.0));
        m.add(DcId(0), DcId(1), Megabytes(2.0));
        assert_eq!(m.volume(DcId(0), DcId(1)), Megabytes(3.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut m = TrafficMatrix::new(2);
        m.add(DcId(0), DcId(5), Megabytes(1.0));
    }
}
