//! Bit-error-rate model of the wide-area links.
//!
//! The paper's global links "experience a BER that is chosen randomly from
//! the following distribution: 54 % probability of 10⁻⁶, 20 % of 10⁻⁵,
//! 15 % of 10⁻⁴, 10 % of 10⁻³ and 1 % of 10⁻²". A BER of `b` degrades the
//! effective bandwidth to `(1 − b_loss) · B_bb` because corrupted frames
//! must be resent (Algorithm 1, line 2).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Discrete BER distribution.
///
/// # Examples
///
/// ```
/// use geoplace_network::ber::BerDistribution;
/// use rand::SeedableRng;
///
/// let ber = BerDistribution::paper_default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let b = ber.sample(&mut rng);
/// assert!(b >= 1e-6 && b <= 1e-2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BerDistribution {
    /// `(ber, probability)` pairs; probabilities sum to 1.
    entries: Vec<(f64, f64)>,
}

impl BerDistribution {
    /// Creates a distribution from `(ber, probability)` entries.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities do not sum to ~1 or any entry is
    /// negative — this is a static configuration error.
    pub fn new(entries: Vec<(f64, f64)>) -> Self {
        assert!(!entries.is_empty(), "empty BER distribution");
        let total: f64 = entries.iter().map(|(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "BER probabilities sum to {total}"
        );
        assert!(
            entries
                .iter()
                .all(|&(b, p)| (0.0..=1.0).contains(&b) && p >= 0.0),
            "invalid BER entry"
        );
        BerDistribution { entries }
    }

    /// The paper's distribution.
    pub fn paper_default() -> Self {
        BerDistribution::new(vec![
            (1e-6, 0.54),
            (1e-5, 0.20),
            (1e-4, 0.15),
            (1e-3, 0.10),
            (1e-2, 0.01),
        ])
    }

    /// A zero-error distribution (for closed-form latency tests).
    pub fn error_free() -> Self {
        BerDistribution::new(vec![(0.0, 1.0)])
    }

    /// Draws a BER for one transmission time step.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut target: f64 = rng.gen();
        for &(ber, p) in &self.entries {
            if target < p {
                return ber;
            }
            target -= p;
        }
        self.entries.last().expect("non-empty").0
    }

    /// Expected BER (for analytic sanity checks).
    pub fn mean(&self) -> f64 {
        self.entries.iter().map(|&(b, p)| b * p).sum()
    }

    /// Fraction of *goodput* retained at a given BER, modelling frame
    /// retransmission: with 1500-byte (12 kbit) frames, the probability a
    /// frame survives is `(1−b)^12000 ≈ exp(−12000·b)`, and goodput scales
    /// with the survival probability.
    pub fn goodput_factor(ber: f64) -> f64 {
        const FRAME_BITS: f64 = 12_000.0;
        (-FRAME_BITS * ber).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_distribution_matches_frequencies() {
        let d = BerDistribution::paper_default();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mut worst = 0usize;
        let mut best = 0usize;
        for _ in 0..n {
            let b = d.sample(&mut rng);
            if b == 1e-2 {
                worst += 1;
            }
            if b == 1e-6 {
                best += 1;
            }
        }
        assert!((worst as f64 / n as f64 - 0.01).abs() < 0.005);
        assert!((best as f64 / n as f64 - 0.54).abs() < 0.01);
    }

    #[test]
    fn mean_matches_closed_form() {
        let d = BerDistribution::paper_default();
        let expected = 1e-6 * 0.54 + 1e-5 * 0.20 + 1e-4 * 0.15 + 1e-3 * 0.10 + 1e-2 * 0.01;
        assert!((d.mean() - expected).abs() < 1e-15);
    }

    #[test]
    fn error_free_always_zero() {
        let d = BerDistribution::error_free();
        let mut rng = StdRng::seed_from_u64(6);
        assert!((0..100).all(|_| d.sample(&mut rng) == 0.0));
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn bad_probabilities_panic() {
        let _ = BerDistribution::new(vec![(1e-6, 0.5), (1e-3, 0.2)]);
    }

    #[test]
    fn goodput_factor_degrades_with_ber() {
        assert!((BerDistribution::goodput_factor(0.0) - 1.0).abs() < 1e-12);
        let g6 = BerDistribution::goodput_factor(1e-6);
        let g3 = BerDistribution::goodput_factor(1e-3);
        let g2 = BerDistribution::goodput_factor(1e-2);
        assert!(g6 > 0.98);
        assert!(g3 < g6);
        assert!(g2 < 1e-10, "10^-2 BER kills the link: {g2}");
    }
}
