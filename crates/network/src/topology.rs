//! Geo-distributed network topology.
//!
//! The paper's Section III models intra-DC local links of bandwidth `B_L`
//! (10 Gb/s, to reach the network-attached storage) and a *full-mesh*
//! optical backbone of bandwidth `B_bb` (100 Gb/s full duplex) between DCs,
//! with propagation delay set by the distance between sites.

use geoplace_types::units::GigabitsPerSecond;
use geoplace_types::{DcId, Error, Result};
use serde::{Deserialize, Serialize};

/// Mean Earth radius in km (haversine distance).
const EARTH_RADIUS_KM: f64 = 6371.0;

/// One data-center site.
///
/// # Examples
///
/// ```
/// use geoplace_network::topology::DcSite;
/// let lisbon = DcSite::new("Lisbon", 38.72, -9.14, 0);
/// assert_eq!(lisbon.name(), "Lisbon");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcSite {
    name: String,
    latitude_deg: f64,
    longitude_deg: f64,
    timezone_offset_hours: i32,
}

impl DcSite {
    /// Creates a site from its coordinates.
    pub fn new(
        name: impl Into<String>,
        latitude_deg: f64,
        longitude_deg: f64,
        timezone_offset_hours: i32,
    ) -> Self {
        DcSite {
            name: name.into(),
            latitude_deg,
            longitude_deg,
            timezone_offset_hours,
        }
    }

    /// Human-readable site name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Latitude in degrees.
    pub fn latitude_deg(&self) -> f64 {
        self.latitude_deg
    }

    /// Longitude in degrees.
    pub fn longitude_deg(&self) -> f64 {
        self.longitude_deg
    }

    /// Offset from simulation base time in hours.
    pub fn timezone_offset_hours(&self) -> i32 {
        self.timezone_offset_hours
    }

    /// Great-circle distance to another site.
    pub fn distance_km(&self, other: &DcSite) -> f64 {
        let (lat1, lon1) = (
            self.latitude_deg.to_radians(),
            self.longitude_deg.to_radians(),
        );
        let (lat2, lon2) = (
            other.latitude_deg.to_radians(),
            other.longitude_deg.to_radians(),
        );
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

/// The three sites of the paper's evaluation.
pub fn paper_sites() -> Vec<DcSite> {
    vec![
        DcSite::new("Lisbon", 38.72, -9.14, 0),
        DcSite::new("Zurich", 47.37, 8.54, 1),
        DcSite::new("Helsinki", 60.17, 24.94, 2),
    ]
}

/// Full-mesh backbone topology with per-DC local links.
///
/// # Examples
///
/// ```
/// use geoplace_network::topology::Topology;
/// use geoplace_types::DcId;
///
/// let topo = Topology::paper_default()?;
/// assert_eq!(topo.len(), 3);
/// // Lisbon–Helsinki is the longest leg of the triangle.
/// let lis_hel = topo.distance_km(DcId(0), DcId(2));
/// let lis_zur = topo.distance_km(DcId(0), DcId(1));
/// assert!(lis_hel > lis_zur);
/// # Ok::<(), geoplace_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    sites: Vec<DcSite>,
    /// Intra-DC local link bandwidth `B_L` per DC.
    local_bandwidth: Vec<GigabitsPerSecond>,
    /// Inter-DC backbone bandwidth `B_bb` (full mesh, uniform).
    backbone_bandwidth: GigabitsPerSecond,
    /// Precomputed pairwise distances.
    distances_km: Vec<f64>,
}

impl Topology {
    /// Creates a full-mesh topology over `sites` with uniform local
    /// bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for fewer than 2 sites or
    /// non-positive bandwidths.
    pub fn new(
        sites: Vec<DcSite>,
        local_bandwidth: GigabitsPerSecond,
        backbone_bandwidth: GigabitsPerSecond,
    ) -> Result<Self> {
        if sites.len() < 2 {
            return Err(Error::invalid_config(
                "a geo-distributed system needs >= 2 sites",
            ));
        }
        if local_bandwidth.0 <= 0.0 || backbone_bandwidth.0 <= 0.0 {
            return Err(Error::invalid_config("bandwidths must be positive"));
        }
        let n = sites.len();
        let mut distances_km = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                distances_km[i * n + j] = sites[i].distance_km(&sites[j]);
            }
        }
        let local_bandwidth = vec![local_bandwidth; n];
        Ok(Topology {
            sites,
            local_bandwidth,
            backbone_bandwidth,
            distances_km,
        })
    }

    /// The paper's setup: Lisbon/Zurich/Helsinki, 10 Gb/s local links,
    /// 100 Gb/s full-duplex optical backbone.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature keeps construction uniform.
    pub fn paper_default() -> Result<Self> {
        Topology::new(
            paper_sites(),
            GigabitsPerSecond(10.0),
            GigabitsPerSecond(100.0),
        )
    }

    /// Overrides one DC's local-link bandwidth `B_L^i` — Eq. 2/3 are
    /// written per-DC, so heterogeneous intranets are supported.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an unknown DC or non-positive
    /// bandwidth.
    pub fn set_local_bandwidth(&mut self, dc: DcId, bandwidth: GigabitsPerSecond) -> Result<()> {
        if dc.index() >= self.sites.len() {
            return Err(Error::unknown_entity(dc));
        }
        if bandwidth.0 <= 0.0 {
            return Err(Error::invalid_config("local bandwidth must be positive"));
        }
        self.local_bandwidth[dc.index()] = bandwidth;
        Ok(())
    }

    /// Number of DCs.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if the topology has no sites (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// All DC ids.
    pub fn dc_ids(&self) -> impl Iterator<Item = DcId> {
        (0..self.sites.len() as u16).map(DcId)
    }

    /// Site metadata of a DC.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn site(&self, dc: DcId) -> &DcSite {
        &self.sites[dc.index()]
    }

    /// Local (intra-DC) link bandwidth `B_L` of a DC.
    pub fn local_bandwidth(&self, dc: DcId) -> GigabitsPerSecond {
        self.local_bandwidth[dc.index()]
    }

    /// Backbone bandwidth `B_bb`.
    pub fn backbone_bandwidth(&self) -> GigabitsPerSecond {
        self.backbone_bandwidth
    }

    /// Great-circle distance between two DCs (0 for `i == j`).
    pub fn distance_km(&self, from: DcId, to: DcId) -> f64 {
        self.distances_km[from.index() * self.sites.len() + to.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_distances_are_realistic() {
        let topo = Topology::paper_default().unwrap();
        // Published great-circle figures: Lisbon–Zurich ≈ 1,716 km,
        // Lisbon–Helsinki ≈ 3,362 km, Zurich–Helsinki ≈ 1,775 km.
        let lz = topo.distance_km(DcId(0), DcId(1));
        let lh = topo.distance_km(DcId(0), DcId(2));
        let zh = topo.distance_km(DcId(1), DcId(2));
        assert!((lz - 1716.0).abs() < 60.0, "Lisbon-Zurich {lz}");
        assert!((lh - 3362.0).abs() < 80.0, "Lisbon-Helsinki {lh}");
        assert!((zh - 1775.0).abs() < 60.0, "Zurich-Helsinki {zh}");
    }

    #[test]
    fn distance_is_symmetric_with_zero_diagonal() {
        let topo = Topology::paper_default().unwrap();
        for i in topo.dc_ids() {
            assert_eq!(topo.distance_km(i, i), 0.0);
            for j in topo.dc_ids() {
                assert!((topo.distance_km(i, j) - topo.distance_km(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn construction_validates() {
        let one = vec![DcSite::new("x", 0.0, 0.0, 0)];
        assert!(Topology::new(one, GigabitsPerSecond(1.0), GigabitsPerSecond(1.0)).is_err());
        let two = paper_sites();
        assert!(
            Topology::new(two.clone(), GigabitsPerSecond(0.0), GigabitsPerSecond(1.0)).is_err()
        );
        assert!(Topology::new(two, GigabitsPerSecond(1.0), GigabitsPerSecond(-5.0)).is_err());
    }

    #[test]
    fn bandwidths_match_paper() {
        let topo = Topology::paper_default().unwrap();
        assert_eq!(topo.local_bandwidth(DcId(0)).0, 10.0);
        assert_eq!(topo.backbone_bandwidth().0, 100.0);
    }

    #[test]
    fn heterogeneous_local_links() {
        let mut topo = Topology::paper_default().unwrap();
        topo.set_local_bandwidth(DcId(2), GigabitsPerSecond(40.0))
            .unwrap();
        assert_eq!(topo.local_bandwidth(DcId(2)).0, 40.0);
        assert_eq!(topo.local_bandwidth(DcId(0)).0, 10.0, "others untouched");
        assert!(topo
            .set_local_bandwidth(DcId(9), GigabitsPerSecond(1.0))
            .is_err());
        assert!(topo
            .set_local_bandwidth(DcId(0), GigabitsPerSecond(0.0))
            .is_err());
    }

    #[test]
    fn timezones_span_europe() {
        let topo = Topology::paper_default().unwrap();
        assert_eq!(topo.site(DcId(0)).timezone_offset_hours(), 0);
        assert_eq!(topo.site(DcId(2)).timezone_offset_hours(), 2);
    }
}
