//! Wide-area network substrate: Section III of the paper.
//!
//! * [`topology`] — sites, haversine distances, full-mesh backbone
//!   (100 Gb/s) with per-DC local links (10 Gb/s);
//! * [`ber`] — the discrete bit-error-rate distribution of the global
//!   links;
//! * [`latency`] — Equations 1–4 and Algorithm 1 (BER-degraded stepped
//!   transmission);
//! * [`traffic`] — DC-to-DC volume matrices;
//! * [`migration`] — latency-constrained migration planning (the hard QoS
//!   bound of Algorithm 2);
//! * [`response`] — per-slot response-time evaluation (Fig. 3's metric).
//!
//! # Examples
//!
//! ```
//! use geoplace_network::prelude::*;
//! use geoplace_types::{units::Megabytes, DcId};
//! use rand::SeedableRng;
//!
//! let model = LatencyModel::new(Topology::paper_default()?, BerDistribution::paper_default());
//! let mut traffic = TrafficMatrix::new(3);
//! traffic.add(DcId(0), DcId(2), Megabytes(25_000.0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let response = evaluate_slot(&model, &traffic, &mut rng);
//! assert!(response.worst().0 > 0.0);
//! # Ok::<(), geoplace_types::Error>(())
//! ```

pub mod ber;
pub mod latency;
pub mod migration;
pub mod response;
pub mod topology;
pub mod traffic;

pub use ber::BerDistribution;
pub use latency::{EffectiveBandwidthModel, LatencyModel};
pub use migration::{latency_constraint_for_qos, Migration, MigrationPlan};
pub use response::{evaluate_slot, SlotResponse};
pub use topology::{paper_sites, DcSite, Topology};
pub use traffic::TrafficMatrix;

/// Convenient bulk import.
pub mod prelude {
    pub use crate::ber::BerDistribution;
    pub use crate::latency::{EffectiveBandwidthModel, LatencyModel};
    pub use crate::migration::{latency_constraint_for_qos, Migration, MigrationPlan};
    pub use crate::response::{evaluate_slot, SlotResponse};
    pub use crate::topology::{paper_sites, DcSite, Topology};
    pub use crate::traffic::TrafficMatrix;
}
