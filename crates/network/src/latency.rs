//! The paper's latency model: Equations 1–4 and Algorithm 1.
//!
//! For a destination DC `j` receiving data from every other DC `i`, the
//! total (worst-case) latency is
//!
//! ```text
//! L_t^j = max_i (L_l^i + L_g^{i,j}) + L_l^j              (Eq. 1)
//! L_l^i = Vol^{i,j} / B_L^i                              (Eq. 2)
//! L_l^j = Σ_i Vol^{i,j} / B_L^j                          (Eq. 3)
//! L_g^{i,j} = Dist^{i,j} / S_l + L_e^{i,j}               (Eq. 4)
//! ```
//!
//! and `L_e` comes from Algorithm 1: transmission proceeds in one-second
//! steps, each with a freshly drawn BER that reduces the effective
//! bandwidth; the remainder in the final step contributes fractionally.

use crate::ber::BerDistribution;
use crate::topology::Topology;
use crate::traffic::TrafficMatrix;
use geoplace_types::units::{GigabitsPerSecond, Megabytes, Seconds};
use geoplace_types::DcId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Speed of light in vacuum, km/s — the paper's `S_l`.
pub const SPEED_OF_LIGHT_KM_S: f64 = 299_792.458;

/// How a BER degrades the backbone's effective bandwidth in Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EffectiveBandwidthModel {
    /// The paper's literal formula: `B_e(t) = (1 − BER(t)) · B_bb`.
    #[default]
    PaperLinear,
    /// Frame-retransmission goodput: `B_e(t) = exp(−12000·BER) · B_bb`
    /// (1500-byte frames; corrupted frames are resent). Offered as a more
    /// physical alternative; ablation benches compare the two.
    FrameRetransmission,
}

impl EffectiveBandwidthModel {
    /// Effective bandwidth under a momentary BER.
    pub fn effective(self, backbone: GigabitsPerSecond, ber: f64) -> GigabitsPerSecond {
        match self {
            EffectiveBandwidthModel::PaperLinear => backbone * (1.0 - ber),
            EffectiveBandwidthModel::FrameRetransmission => {
                backbone * BerDistribution::goodput_factor(ber)
            }
        }
    }
}

/// The assembled latency model over a topology.
///
/// # Examples
///
/// ```
/// use geoplace_network::latency::LatencyModel;
/// use geoplace_network::ber::BerDistribution;
/// use geoplace_network::topology::Topology;
/// use geoplace_network::traffic::TrafficMatrix;
/// use geoplace_types::{units::Megabytes, DcId};
/// use rand::SeedableRng;
///
/// let model = LatencyModel::new(Topology::paper_default()?, BerDistribution::error_free());
/// let mut traffic = TrafficMatrix::new(3);
/// traffic.add(DcId(0), DcId(1), Megabytes(12_500.0)); // 100 Gbit
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let total = model.total_latency(DcId(1), &traffic, &mut rng);
/// assert!(total.0 > 0.0);
/// # Ok::<(), geoplace_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    topology: Topology,
    ber: BerDistribution,
    bandwidth_model: EffectiveBandwidthModel,
    /// Propagation speed `S_l` in km/s.
    speed_km_per_s: f64,
}

impl LatencyModel {
    /// Creates the model with the paper's literal effective-bandwidth rule
    /// and speed-of-light propagation.
    pub fn new(topology: Topology, ber: BerDistribution) -> Self {
        LatencyModel {
            topology,
            ber,
            bandwidth_model: EffectiveBandwidthModel::PaperLinear,
            speed_km_per_s: SPEED_OF_LIGHT_KM_S,
        }
    }

    /// Switches the effective-bandwidth degradation model.
    pub fn with_bandwidth_model(mut self, model: EffectiveBandwidthModel) -> Self {
        self.bandwidth_model = model;
        self
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Eq. 2 — local latency of source DC `i` pushing `volume` through its
    /// own local link.
    pub fn source_local_latency(&self, dc: DcId, volume: Megabytes) -> Seconds {
        self.topology.local_bandwidth(dc).transfer_time_mb(volume)
    }

    /// Eq. 3 — local latency of destination DC `j` absorbing the total
    /// volume collected from all other DCs.
    pub fn destination_local_latency(&self, dc: DcId, total_incoming: Megabytes) -> Seconds {
        self.topology
            .local_bandwidth(dc)
            .transfer_time_mb(total_incoming)
    }

    /// Propagation delay between two DCs (first term of Eq. 4).
    pub fn propagation(&self, from: DcId, to: DcId) -> Seconds {
        Seconds(self.topology.distance_km(from, to) / self.speed_km_per_s)
    }

    /// Algorithm 1 — data latency `L_e` of pushing `volume` across the
    /// backbone when every one-second step draws a fresh BER.
    pub fn global_data_latency<R: Rng + ?Sized>(&self, volume: Megabytes, rng: &mut R) -> Seconds {
        let mut remaining = volume;
        let mut latency = Seconds::ZERO;
        if remaining.0 <= 0.0 {
            return latency;
        }
        loop {
            let ber = self.ber.sample(rng);
            let effective = self
                .bandwidth_model
                .effective(self.topology.backbone_bandwidth(), ber);
            // Volume movable in one one-second step.
            let step_capacity = effective.megabytes_per_second();
            if step_capacity.0 <= 0.0 {
                // Fully degraded step: a second passes, nothing moves.
                latency += Seconds(1.0);
                continue;
            }
            if remaining.0 <= step_capacity.0 {
                latency += Seconds(remaining.0 / step_capacity.0);
                return latency;
            }
            remaining -= step_capacity;
            latency += Seconds(1.0);
        }
    }

    /// Eq. 4 — global latency: propagation plus BER-degraded data latency.
    pub fn global_latency<R: Rng + ?Sized>(
        &self,
        from: DcId,
        to: DcId,
        volume: Megabytes,
        rng: &mut R,
    ) -> Seconds {
        self.propagation(from, to) + self.global_data_latency(volume, rng)
    }

    /// Eq. 1 — total worst-case latency for destination DC `dest` given a
    /// slot's traffic matrix: the slowest source chain (its local link plus
    /// its global link) plus the destination's own local drain.
    pub fn total_latency<R: Rng + ?Sized>(
        &self,
        dest: DcId,
        traffic: &TrafficMatrix,
        rng: &mut R,
    ) -> Seconds {
        let mut worst_chain = Seconds::ZERO;
        for src in self.topology.dc_ids() {
            if src == dest {
                continue;
            }
            let volume = traffic.volume(src, dest);
            if volume.0 <= 0.0 {
                continue;
            }
            let chain = self.source_local_latency(src, volume)
                + self.global_latency(src, dest, volume, rng);
            worst_chain = worst_chain.max(chain);
        }
        worst_chain + self.destination_local_latency(dest, traffic.incoming(dest))
    }

    /// Response-time variant of Eq. 1: like [`LatencyModel::total_latency`]
    /// but the destination drain also carries the DC's *intra-DC* volume
    /// (the matrix diagonal) — co-located VM pairs still exchange data
    /// through the DC's local links to the network-attached storage
    /// (Sect. III), so consolidating every VM into one DC concentrates the
    /// whole fleet's traffic onto a single 10 Gb/s local link.
    pub fn response_latency<R: Rng + ?Sized>(
        &self,
        dest: DcId,
        traffic: &TrafficMatrix,
        rng: &mut R,
    ) -> Seconds {
        let mut worst_chain = Seconds::ZERO;
        for src in self.topology.dc_ids() {
            if src == dest {
                continue;
            }
            let volume = traffic.volume(src, dest);
            if volume.0 <= 0.0 {
                continue;
            }
            let chain = self.source_local_latency(src, volume)
                + self.global_latency(src, dest, volume, rng);
            worst_chain = worst_chain.max(chain);
        }
        let drain = traffic.incoming(dest) + traffic.volume(dest, dest);
        worst_chain + self.destination_local_latency(dest, drain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn error_free_model() -> LatencyModel {
        LatencyModel::new(
            Topology::paper_default().unwrap(),
            BerDistribution::error_free(),
        )
    }

    fn paper_model() -> LatencyModel {
        LatencyModel::new(
            Topology::paper_default().unwrap(),
            BerDistribution::paper_default(),
        )
    }

    #[test]
    fn local_latency_matches_closed_form() {
        let m = error_free_model();
        // 10 Gb/s local link: 12,500 MB = 100 Gbit → 10 s.
        let t = m.source_local_latency(DcId(0), Megabytes(12_500.0));
        assert!((t.0 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn propagation_scales_with_distance() {
        let m = error_free_model();
        let lis_zur = m.propagation(DcId(0), DcId(1));
        let lis_hel = m.propagation(DcId(0), DcId(2));
        assert!(lis_hel.0 > lis_zur.0);
        // ~1716 km at light speed ≈ 5.7 ms.
        assert!((lis_zur.0 - 1716.0 / SPEED_OF_LIGHT_KM_S).abs() < 3e-4);
    }

    #[test]
    fn algorithm1_error_free_equals_closed_form() {
        let m = error_free_model();
        let mut rng = StdRng::seed_from_u64(1);
        // 100 Gb/s backbone → 12.5 GB/s. 50,000 MB → 4 s exactly.
        let t = m.global_data_latency(Megabytes(50_000.0), &mut rng);
        assert!((t.0 - 4.0).abs() < 1e-9);
        // Sub-second volume → fractional step.
        let t = m.global_data_latency(Megabytes(6_250.0), &mut rng);
        assert!((t.0 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn algorithm1_with_errors_is_slower_than_error_free() {
        let clean = error_free_model();
        let noisy = paper_model();
        let vol = Megabytes(500_000.0);
        let mut rng1 = StdRng::seed_from_u64(2);
        let mut rng2 = StdRng::seed_from_u64(2);
        let t_clean = clean.global_data_latency(vol, &mut rng1);
        let t_noisy = noisy.global_data_latency(vol, &mut rng2);
        assert!(
            t_noisy.0 >= t_clean.0,
            "errors cannot speed transmission up"
        );
    }

    #[test]
    fn algorithm1_zero_volume_is_instant() {
        let m = paper_model();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            m.global_data_latency(Megabytes::ZERO, &mut rng),
            Seconds::ZERO
        );
    }

    #[test]
    fn algorithm1_terminates_on_large_volumes() {
        let m = paper_model();
        let mut rng = StdRng::seed_from_u64(4);
        // 1 TB: must terminate in ~80+ steps.
        let t = m.global_data_latency(Megabytes(1_000_000.0), &mut rng);
        assert!(t.0 >= 80.0 && t.0 < 200.0, "latency {t}");
    }

    #[test]
    fn eq1_total_latency_closed_form_error_free() {
        let m = error_free_model();
        let mut traffic = TrafficMatrix::new(3);
        // DC0 → DC1: 12,500 MB (10 s local at 10 Gb/s, 1 s global at
        // 100 Gb/s); DC2 → DC1: 2,500 MB (2 s local, 0.2 s global).
        traffic.add(DcId(0), DcId(1), Megabytes(12_500.0));
        traffic.add(DcId(2), DcId(1), Megabytes(2_500.0));
        let mut rng = StdRng::seed_from_u64(5);
        let total = m.total_latency(DcId(1), &traffic, &mut rng);
        let prop01 = m.propagation(DcId(0), DcId(1)).0;
        // Worst chain: DC0's 10 + 1 + prop; destination drain:
        // 15,000 MB / 10 Gb/s = 12 s.
        let expected = (10.0 + 1.0 + prop01) + 12.0;
        assert!(
            (total.0 - expected).abs() < 1e-6,
            "total {total} vs {expected}"
        );
    }

    #[test]
    fn eq1_with_no_traffic_is_zero() {
        let m = paper_model();
        let traffic = TrafficMatrix::new(3);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(m.total_latency(DcId(0), &traffic, &mut rng), Seconds::ZERO);
    }

    #[test]
    fn frame_retransmission_model_is_harsher() {
        let paper = EffectiveBandwidthModel::PaperLinear;
        let frame = EffectiveBandwidthModel::FrameRetransmission;
        let bbb = GigabitsPerSecond(100.0);
        // At BER 1e-3 the paper's linear model barely notices; the frame
        // model collapses the link.
        assert!(paper.effective(bbb, 1e-3).0 > 99.0);
        assert!(frame.effective(bbb, 1e-3).0 < 1.0);
        // At zero BER both are ideal.
        assert_eq!(paper.effective(bbb, 0.0).0, 100.0);
        assert_eq!(frame.effective(bbb, 0.0).0, 100.0);
    }

    #[test]
    fn intra_dc_traffic_does_not_create_global_latency() {
        let m = error_free_model();
        let mut traffic = TrafficMatrix::new(3);
        traffic.add(DcId(1), DcId(1), Megabytes(1e6));
        let mut rng = StdRng::seed_from_u64(7);
        // Eq. 1 ignores i == j, and incoming() excludes the diagonal.
        assert_eq!(m.total_latency(DcId(1), &traffic, &mut rng), Seconds::ZERO);
    }
}
