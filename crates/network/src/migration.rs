//! Migration feasibility under the hard latency constraint.
//!
//! Algorithm 2 (the k-means output revision) may only execute a migration
//! if moving the VM images finishes within the latency constraint derived
//! from the QoS level: "a value of 98 % for the quality of service
//! guarantees that the migration of VMs will take less than the 2 % of the
//! time slot" — 72 s of a one-hour slot.
//!
//! [`MigrationPlan`] accumulates tentatively accepted migrations; its
//! latency query re-evaluates Eq. 1 for the destination *including* all
//! volume already committed to that destination, which also captures the
//! paper's remark about preventing "network bottlenecks made by one DC
//! when the other DCs need to migrate their VMs to the same destination".

use crate::latency::LatencyModel;
use crate::traffic::TrafficMatrix;
use geoplace_types::time::SLOT_SECONDS;
use geoplace_types::units::{Gigabytes, Seconds};
use geoplace_types::{DcId, VmId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One planned VM migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Migration {
    /// The VM to move.
    pub vm: VmId,
    /// Current host DC.
    pub from: DcId,
    /// Destination DC.
    pub to: DcId,
    /// Image size moved across the network.
    pub size: Gigabytes,
}

/// Latency budget for migrations derived from a QoS level.
///
/// # Examples
///
/// ```
/// use geoplace_network::migration::latency_constraint_for_qos;
/// let budget = latency_constraint_for_qos(0.98);
/// assert!((budget.0 - 72.0).abs() < 1e-9);
/// ```
pub fn latency_constraint_for_qos(qos: f64) -> Seconds {
    Seconds(((1.0 - qos).clamp(0.0, 1.0)) * SLOT_SECONDS)
}

/// A mutable set of planned migrations with incremental feasibility
/// checking.
///
/// # Examples
///
/// ```
/// use geoplace_network::ber::BerDistribution;
/// use geoplace_network::latency::LatencyModel;
/// use geoplace_network::migration::{latency_constraint_for_qos, Migration, MigrationPlan};
/// use geoplace_network::topology::Topology;
/// use geoplace_types::{units::Gigabytes, DcId, VmId};
/// use rand::SeedableRng;
///
/// let model = LatencyModel::new(Topology::paper_default()?, BerDistribution::error_free());
/// let mut plan = MigrationPlan::new(3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let m = Migration { vm: VmId(0), from: DcId(0), to: DcId(1), size: Gigabytes(8.0) };
/// let budget = latency_constraint_for_qos(0.98);
/// assert!(plan.try_add(m, &model, budget, &mut rng));
/// assert_eq!(plan.migrations().len(), 1);
/// # Ok::<(), geoplace_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    migrations: Vec<Migration>,
    volumes: TrafficMatrix,
}

impl MigrationPlan {
    /// Creates an empty plan over `n_dcs` data centers.
    pub fn new(n_dcs: usize) -> Self {
        MigrationPlan {
            migrations: Vec::new(),
            volumes: TrafficMatrix::new(n_dcs),
        }
    }

    /// The migrations committed so far.
    pub fn migrations(&self) -> &[Migration] {
        &self.migrations
    }

    /// The migration traffic committed so far.
    pub fn volumes(&self) -> &TrafficMatrix {
        &self.volumes
    }

    /// Worst-case completion latency at destination `dest` if `extra`
    /// additional megabyte-volume were added from `src` — Eq. 1 over the
    /// already-committed migration traffic plus the candidate.
    pub fn latency_with<R: Rng + ?Sized>(
        &self,
        model: &LatencyModel,
        candidate: Migration,
        rng: &mut R,
    ) -> Seconds {
        let mut tentative = self.volumes.clone();
        tentative.add(candidate.from, candidate.to, candidate.size.to_megabytes());
        model.total_latency(candidate.to, &tentative, rng)
    }

    /// Tries to append `candidate`: commits and returns `true` iff the
    /// destination's worst-case latency (with the candidate included)
    /// stays within `budget`.
    pub fn try_add<R: Rng + ?Sized>(
        &mut self,
        candidate: Migration,
        model: &LatencyModel,
        budget: Seconds,
        rng: &mut R,
    ) -> bool {
        if candidate.from == candidate.to {
            return false;
        }
        let latency = self.latency_with(model, candidate, rng);
        if latency.0 <= budget.0 {
            self.volumes
                .add(candidate.from, candidate.to, candidate.size.to_megabytes());
            self.migrations.push(candidate);
            true
        } else {
            false
        }
    }

    /// Appends `candidate` unconditionally, past any latency budget —
    /// the evacuation path for a DC outage, where leaving the VM behind
    /// is not an option. The forced volume still lands in the committed
    /// traffic matrix, so subsequent [`MigrationPlan::try_add`] calls
    /// feel its bandwidth pressure. Same-DC moves are ignored.
    pub fn force_add(&mut self, candidate: Migration) {
        if candidate.from == candidate.to {
            return;
        }
        self.volumes
            .add(candidate.from, candidate.to, candidate.size.to_megabytes());
        self.migrations.push(candidate);
    }

    /// Number of committed migrations.
    pub fn len(&self) -> usize {
        self.migrations.len()
    }

    /// True when no migrations are committed.
    pub fn is_empty(&self) -> bool {
        self.migrations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::BerDistribution;
    use crate::topology::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> LatencyModel {
        LatencyModel::new(
            Topology::paper_default().unwrap(),
            BerDistribution::error_free(),
        )
    }

    fn mig(vm: u32, from: u16, to: u16, gb: f64) -> Migration {
        Migration {
            vm: VmId(vm),
            from: DcId(from),
            to: DcId(to),
            size: Gigabytes(gb),
        }
    }

    #[test]
    fn qos_constraint_examples() {
        assert!((latency_constraint_for_qos(0.98).0 - 72.0).abs() < 1e-9);
        assert!((latency_constraint_for_qos(0.90).0 - 360.0).abs() < 1e-9);
        assert_eq!(latency_constraint_for_qos(1.0).0, 0.0);
    }

    #[test]
    fn single_small_migration_fits_98_percent_qos() {
        let m = model();
        let mut plan = MigrationPlan::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(plan.try_add(
            mig(0, 0, 1, 8.0),
            &m,
            latency_constraint_for_qos(0.98),
            &mut rng
        ));
    }

    #[test]
    fn budget_exhaustion_rejects_later_migrations() {
        let m = model();
        let mut plan = MigrationPlan::new(3);
        let mut rng = StdRng::seed_from_u64(2);
        // QoS 0.98 ⇒ a 72 s budget. Each 8 GB VM costs ≈ 6.4 s on the
        // shared 10 Gb/s local links (source + destination) plus backbone
        // time; the budget saturates.
        let budget = latency_constraint_for_qos(0.98);
        let mut accepted = 0;
        for vm in 0..100u32 {
            if plan.try_add(mig(vm, 0, 1, 8.0), &m, budget, &mut rng) {
                accepted += 1;
            } else {
                break;
            }
        }
        assert!(accepted > 0, "first migration must fit");
        assert!(accepted < 100, "budget must eventually be exhausted");
        // The committed plan itself must respect the budget: re-check by
        // measuring the destination latency of the full matrix.
        let total = m.total_latency(DcId(1), plan.volumes(), &mut rng);
        assert!(total.0 <= budget.0 + 1e-9, "plan total {total}");
    }

    #[test]
    fn same_dc_migration_is_rejected() {
        let m = model();
        let mut plan = MigrationPlan::new(3);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!plan.try_add(mig(0, 1, 1, 2.0), &m, Seconds(1e9), &mut rng));
        assert!(plan.is_empty());
    }

    #[test]
    fn cross_destination_contention_is_visible() {
        // Volume already headed to DC1 from DC0 must slow a later
        // DC2 → DC1 migration (shared destination local link, Eq. 3).
        let m = model();
        let mut rng = StdRng::seed_from_u64(4);
        let empty = MigrationPlan::new(3);
        let lone = empty.latency_with(&m, mig(9, 2, 1, 8.0), &mut rng);
        let mut busy = MigrationPlan::new(3);
        assert!(busy.try_add(mig(0, 0, 1, 8.0), &m, Seconds(1e9), &mut rng));
        let contended = busy.latency_with(&m, mig(9, 2, 1, 8.0), &mut rng);
        assert!(contended.0 > lone.0, "contended {contended} vs lone {lone}");
    }

    #[test]
    fn forced_migrations_crowd_the_plan() {
        // An evacuation committed past the budget still occupies the
        // destination link: a voluntary migration that fit an empty
        // plan is slower (and can be rejected) afterwards.
        let m = model();
        let mut rng = StdRng::seed_from_u64(6);
        let empty = MigrationPlan::new(3);
        let lone = empty.latency_with(&m, mig(9, 2, 1, 8.0), &mut rng);
        let mut plan = MigrationPlan::new(3);
        plan.force_add(mig(0, 0, 1, 400.0));
        assert_eq!(plan.len(), 1, "forced move is committed");
        let crowded = plan.latency_with(&m, mig(9, 2, 1, 8.0), &mut rng);
        assert!(crowded.0 > lone.0, "crowded {crowded} vs lone {lone}");
        plan.force_add(mig(1, 1, 1, 8.0));
        assert_eq!(plan.len(), 1, "same-DC force is ignored");
    }

    #[test]
    fn zero_budget_rejects_everything() {
        let m = model();
        let mut plan = MigrationPlan::new(3);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!plan.try_add(mig(0, 0, 1, 2.0), &m, Seconds(0.0), &mut rng));
    }
}
