//! Response-time evaluation.
//!
//! The paper defines performance as "the response time of the VMs; i.e.,
//! the amount of time they have to wait for data from other VMs in the
//! network". Per slot and per destination DC that is exactly Eq. 1 applied
//! to the slot's *data-correlation* traffic (the volumes VM pairs exchange
//! across the placement), and Fig. 3 plots the distribution of these
//! samples over the week.

use crate::latency::LatencyModel;
use crate::traffic::TrafficMatrix;
use geoplace_types::units::Seconds;
use geoplace_types::DcId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Response-time samples of one slot: the Eq. 1 worst-case latency per
/// destination DC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotResponse {
    /// `(destination, worst-case response time)` for every DC.
    pub per_dc: Vec<(DcId, Seconds)>,
}

impl SlotResponse {
    /// The worst response time across destinations — what SLA contracts
    /// bound ("DC providers typically consider worst-case response time in
    /// their SLAs").
    pub fn worst(&self) -> Seconds {
        self.per_dc
            .iter()
            .map(|&(_, t)| t)
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Mean response time across destinations.
    pub fn mean(&self) -> Seconds {
        if self.per_dc.is_empty() {
            return Seconds::ZERO;
        }
        Seconds(self.per_dc.iter().map(|&(_, t)| t.0).sum::<f64>() / self.per_dc.len() as f64)
    }
}

/// Evaluates Eq. 1 for every destination DC over a slot's traffic matrix.
///
/// # Examples
///
/// ```
/// use geoplace_network::ber::BerDistribution;
/// use geoplace_network::latency::LatencyModel;
/// use geoplace_network::response::evaluate_slot;
/// use geoplace_network::topology::Topology;
/// use geoplace_network::traffic::TrafficMatrix;
/// use geoplace_types::{units::Megabytes, DcId};
/// use rand::SeedableRng;
///
/// let model = LatencyModel::new(Topology::paper_default()?, BerDistribution::error_free());
/// let mut traffic = TrafficMatrix::new(3);
/// traffic.add(DcId(0), DcId(1), Megabytes(1_250.0));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let response = evaluate_slot(&model, &traffic, &mut rng);
/// assert_eq!(response.per_dc.len(), 3);
/// assert!(response.worst().0 > 0.0);
/// # Ok::<(), geoplace_types::Error>(())
/// ```
pub fn evaluate_slot<R: Rng + ?Sized>(
    model: &LatencyModel,
    traffic: &TrafficMatrix,
    rng: &mut R,
) -> SlotResponse {
    let per_dc = model
        .topology()
        .dc_ids()
        .map(|dc| (dc, model.response_latency(dc, traffic, rng)))
        .collect();
    SlotResponse { per_dc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::BerDistribution;
    use crate::topology::Topology;
    use geoplace_types::units::Megabytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> LatencyModel {
        LatencyModel::new(
            Topology::paper_default().unwrap(),
            BerDistribution::error_free(),
        )
    }

    #[test]
    fn balanced_traffic_beats_hotspot_on_worst_case() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(1);
        // Hotspot: 30 GB all converging on DC0.
        let mut hotspot = TrafficMatrix::new(3);
        hotspot.add(DcId(1), DcId(0), Megabytes(15_000.0));
        hotspot.add(DcId(2), DcId(0), Megabytes(15_000.0));
        // Balanced: the same total spread over all destinations.
        let mut balanced = TrafficMatrix::new(3);
        balanced.add(DcId(1), DcId(0), Megabytes(5_000.0));
        balanced.add(DcId(2), DcId(0), Megabytes(5_000.0));
        balanced.add(DcId(0), DcId(1), Megabytes(5_000.0));
        balanced.add(DcId(2), DcId(1), Megabytes(5_000.0));
        balanced.add(DcId(0), DcId(2), Megabytes(5_000.0));
        balanced.add(DcId(1), DcId(2), Megabytes(5_000.0));
        let worst_hot = evaluate_slot(&m, &hotspot, &mut rng).worst();
        let worst_bal = evaluate_slot(&m, &balanced, &mut rng).worst();
        assert!(
            worst_bal.0 < worst_hot.0,
            "balanced {worst_bal} should beat hotspot {worst_hot}"
        );
    }

    #[test]
    fn empty_traffic_gives_zero_response() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(2);
        let r = evaluate_slot(&m, &TrafficMatrix::new(3), &mut rng);
        assert_eq!(r.worst(), Seconds::ZERO);
        assert_eq!(r.mean(), Seconds::ZERO);
    }

    #[test]
    fn worst_dominates_mean() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(3);
        let mut traffic = TrafficMatrix::new(3);
        traffic.add(DcId(0), DcId(1), Megabytes(10_000.0));
        traffic.add(DcId(1), DcId(2), Megabytes(1_000.0));
        let r = evaluate_slot(&m, &traffic, &mut rng);
        assert!(r.worst().0 >= r.mean().0);
    }

    #[test]
    fn colocation_pays_only_the_local_drain() {
        // All traffic intra-DC → no propagation/backbone latency, but the
        // co-located pairs still drain through DC0's 10 Gb/s local link
        // (Sect. III: VMs reach each other via the NAS links).
        let m = model();
        let mut rng = StdRng::seed_from_u64(4);
        let mut traffic = TrafficMatrix::new(3);
        traffic.add(DcId(0), DcId(0), Megabytes(1e6));
        let r = evaluate_slot(&m, &traffic, &mut rng);
        // 1e6 MB over 10 Gb/s = 8e12 bits / 1e10 b/s = 800 s, exactly the
        // local drain — no global terms.
        let expected = m.destination_local_latency(DcId(0), Megabytes(1e6));
        assert!((r.worst().0 - expected.0).abs() < 1e-9);
        // Other DCs see nothing.
        assert_eq!(r.per_dc[1].1, Seconds::ZERO);
        assert_eq!(r.per_dc[2].1, Seconds::ZERO);
    }
}
