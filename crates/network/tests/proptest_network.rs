//! Property-based tests of the network substrate.

use geoplace_network::ber::BerDistribution;
use geoplace_network::latency::{EffectiveBandwidthModel, LatencyModel};
use geoplace_network::migration::{latency_constraint_for_qos, Migration, MigrationPlan};
use geoplace_network::response::evaluate_slot;
use geoplace_network::topology::Topology;
use geoplace_network::traffic::TrafficMatrix;
use geoplace_types::units::{Gigabytes, Megabytes, Seconds};
use geoplace_types::{DcId, VmId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn paper_model() -> LatencyModel {
    LatencyModel::new(
        Topology::paper_default().unwrap(),
        BerDistribution::paper_default(),
    )
}

fn clean_model() -> LatencyModel {
    LatencyModel::new(
        Topology::paper_default().unwrap(),
        BerDistribution::error_free(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Algorithm 1 terminates with a finite latency for any volume/seed,
    /// and error-free transmission matches the closed form exactly.
    #[test]
    fn algorithm1_terminates_and_matches_closed_form(volume in 0.0f64..5.0e6, seed in 0u64..200) {
        let noisy = paper_model();
        let clean = clean_model();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = noisy.global_data_latency(Megabytes(volume), &mut rng);
        prop_assert!(t.0.is_finite() && t.0 >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let t_clean = clean.global_data_latency(Megabytes(volume), &mut rng);
        let closed_form = volume * 8.0e6 / 100.0e9;
        prop_assert!((t_clean.0 - closed_form).abs() < 1e-6);
    }

    /// The frame-retransmission model never yields more bandwidth than
    /// the paper's linear model (it is strictly harsher).
    #[test]
    fn frame_model_is_harsher(ber in 0.0f64..0.01) {
        let bbb = geoplace_types::units::GigabitsPerSecond(100.0);
        let paper = EffectiveBandwidthModel::PaperLinear.effective(bbb, ber);
        let frame = EffectiveBandwidthModel::FrameRetransmission.effective(bbb, ber);
        prop_assert!(frame.0 <= paper.0 + 1e-9);
    }

    /// Traffic-matrix accounting: incoming/outgoing sums are consistent
    /// with the total.
    #[test]
    fn traffic_sums_consistent(
        cells in proptest::collection::vec((0u16..3, 0u16..3, 0.0f64..1.0e5), 0..30),
    ) {
        let mut matrix = TrafficMatrix::new(3);
        for (from, to, vol) in cells {
            matrix.add(DcId(from), DcId(to), Megabytes(vol));
        }
        let total_in: f64 = (0..3).map(|d| matrix.incoming(DcId(d)).0).sum();
        let total_out: f64 = (0..3).map(|d| matrix.outgoing(DcId(d)).0).sum();
        prop_assert!((total_in - total_out).abs() < 1e-6);
        prop_assert!((matrix.total_inter_dc().0 - total_in).abs() < 1e-6);
        prop_assert!(matrix.max_link().0 <= total_in + 1e-6);
    }

    /// A committed migration plan never exceeds the budget it was built
    /// with, measured post-hoc at any destination.
    #[test]
    fn migration_plan_respects_budget(
        migrations in proptest::collection::vec((0u16..3, 0u16..3, 1.0f64..8.0), 1..40),
        qos in 0.9f64..0.999,
        seed in 0u64..100,
    ) {
        let model = clean_model();
        let budget = latency_constraint_for_qos(qos);
        let mut plan = MigrationPlan::new(3);
        let mut rng = StdRng::seed_from_u64(seed);
        for (i, (from, to, gb)) in migrations.into_iter().enumerate() {
            let migration = Migration {
                vm: VmId(i as u32),
                from: DcId(from),
                to: DcId(to),
                size: Gigabytes(gb),
            };
            plan.try_add(migration, &model, budget, &mut rng);
        }
        // Error-free network: latency is deterministic — re-evaluate.
        for dest in 0..3u16 {
            let mut rng = StdRng::seed_from_u64(seed + 1);
            let latency = model.total_latency(DcId(dest), plan.volumes(), &mut rng);
            prop_assert!(latency.0 <= budget.0 + 1e-6, "dest {dest}: {latency} > {budget}");
        }
    }

    /// Response evaluation covers every DC and is non-negative.
    #[test]
    fn response_covers_all_dcs(
        cells in proptest::collection::vec((0u16..3, 0u16..3, 0.0f64..1.0e5), 0..20),
        seed in 0u64..100,
    ) {
        let model = paper_model();
        let mut traffic = TrafficMatrix::new(3);
        for (from, to, vol) in cells {
            traffic.add(DcId(from), DcId(to), Megabytes(vol));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let response = evaluate_slot(&model, &traffic, &mut rng);
        prop_assert_eq!(response.per_dc.len(), 3);
        for &(_, t) in &response.per_dc {
            prop_assert!(t.0 >= 0.0 && t.0.is_finite());
        }
        prop_assert!(response.worst().0 >= response.mean().0 - 1e-9);
    }

    /// Adding intra-DC volume increases (or keeps) the response latency
    /// but never the migration latency (Eq. 1 ignores the diagonal).
    #[test]
    fn diagonal_affects_response_not_migration(volume in 1.0f64..1.0e6) {
        let model = clean_model();
        let mut base = TrafficMatrix::new(3);
        base.add(DcId(0), DcId(1), Megabytes(1000.0));
        let mut with_diag = base.clone();
        with_diag.add(DcId(1), DcId(1), Megabytes(volume));
        let mut rng = StdRng::seed_from_u64(5);
        let t_total_base = model.total_latency(DcId(1), &base, &mut rng);
        let t_total_diag = model.total_latency(DcId(1), &with_diag, &mut rng);
        prop_assert!((t_total_base.0 - t_total_diag.0).abs() < 1e-9);
        let r_base = model.response_latency(DcId(1), &base, &mut rng);
        let r_diag = model.response_latency(DcId(1), &with_diag, &mut rng);
        prop_assert!(r_diag.0 > r_base.0);
    }

    /// QoS → budget mapping is monotone decreasing in QoS.
    #[test]
    fn qos_budget_monotone(qos_a in 0.5f64..1.0, delta in 0.0f64..0.4) {
        let qos_b = (qos_a + delta).min(1.0);
        let budget_a = latency_constraint_for_qos(qos_a);
        let budget_b = latency_constraint_for_qos(qos_b);
        prop_assert!(budget_b.0 <= budget_a.0 + 1e-12);
    }

    /// Propagation latency obeys the triangle structure of the paper
    /// sites (direct never slower than the physical lower bound).
    #[test]
    fn propagation_positive_between_distinct_sites(a in 0u16..3, b in 0u16..3) {
        let model = paper_model();
        let t = model.propagation(DcId(a), DcId(b));
        if a == b {
            prop_assert_eq!(t, Seconds(0.0));
        } else {
            prop_assert!(t.0 > 0.0);
            prop_assert!(t.0 < 0.1, "intra-Europe propagation below 100 ms");
        }
    }
}
