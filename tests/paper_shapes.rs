//! Reproduction-shape tests: the qualitative results of the paper's
//! Figures 1–3 must hold on a mid-size scenario.
//!
//! These are the "who wins" relations the paper reports; absolute numbers
//! differ (synthetic substrate) but orderings are asserted:
//!
//! * Fig. 1 — Proposed has the lowest operational cost; Ener-aware the
//!   highest (it camps in the most expensive DC).
//! * Fig. 2 — Ener-aware and Proposed are the two most energy-efficient;
//!   Net-aware is the least.
//! * Fig. 3 — the spread policies (Proposed, Net-aware) have a better
//!   worst-case response time than the packing policies (Ener-, Pri-);
//!   Net-aware is the best.
//! * Algorithm 2 keeps the Proposed policy's migrations within the QoS
//!   budget; the blind baselines blow it.

use geoplace::core::{ProposedConfig, ProposedPolicy};
use geoplace::dcsim::SimulationReport;
use geoplace::prelude::*;

/// Two simulated days, ~100 VMs: big enough for the orderings to be
/// stable, small enough for CI.
fn shape_config() -> ScenarioConfig {
    let mut config = ScenarioConfig::scaled(42);
    config.horizon_slots = 48;
    config
}

fn run_all() -> Vec<SimulationReport> {
    let config = shape_config();
    let mut proposed = ProposedPolicy::new(ProposedConfig::default());
    vec![
        Simulator::new(Scenario::build(&config).expect("valid")).run(&mut proposed),
        Simulator::new(Scenario::build(&config).expect("valid")).run(&mut EnerAwarePolicy::new()),
        Simulator::new(Scenario::build(&config).expect("valid")).run(&mut PriAwarePolicy::new()),
        Simulator::new(Scenario::build(&config).expect("valid")).run(&mut NetAwarePolicy::new()),
    ]
}

fn totals_of(reports: &[SimulationReport], name: &str) -> geoplace::dcsim::Totals {
    reports
        .iter()
        .find(|r| r.policy == name)
        .unwrap_or_else(|| panic!("missing report {name}"))
        .totals()
}

#[test]
fn fig1_proposed_has_lowest_cost_and_ener_aware_highest() {
    let reports = run_all();
    let proposed = totals_of(&reports, "Proposed").cost_eur;
    let ener = totals_of(&reports, "Ener-aware").cost_eur;
    let pri = totals_of(&reports, "Pri-aware").cost_eur;
    let net = totals_of(&reports, "Net-aware").cost_eur;
    // Proposed clearly beats the packers. Against Net-aware the gap only
    // opens over a full week (the batteries start full and mask the price
    // play for the first days — see `repro_all` / EXPERIMENTS.md); at this
    // 2-day CI scale we assert Proposed stays within 10 % of it.
    assert!(
        proposed < pri && proposed < ener,
        "Proposed must beat the packers: P={proposed:.1} E={ener:.1} Pri={pri:.1}"
    );
    assert!(
        proposed < net * 1.10,
        "Proposed must track Net-aware closely: P={proposed:.1} N={net:.1}"
    );
    // The most expensive policy is always one of the single-DC packers
    // (which one flips with the horizon: over a full week Ener-aware's
    // Lisbon camp loses; over two days Pri-aware's battery-less hopping
    // loses — see EXPERIMENTS.md for the weekly ordering).
    let worst = ener.max(pri).max(net).max(proposed);
    assert!(
        worst == ener || worst == pri,
        "a packer must be the most expensive: E={ener:.1} Pri={pri:.1} N={net:.1}"
    );
}

#[test]
fn fig2_consolidators_beat_spreaders_on_energy() {
    let reports = run_all();
    let proposed = totals_of(&reports, "Proposed").energy_gj;
    let ener = totals_of(&reports, "Ener-aware").energy_gj;
    let pri = totals_of(&reports, "Pri-aware").energy_gj;
    let net = totals_of(&reports, "Net-aware").energy_gj;
    // The two correlation-aware consolidators are the efficient pair…
    assert!(
        proposed < net && ener < net,
        "Net-aware must be the energy worst"
    );
    // …and Proposed stays within a few percent of the specialist
    // (the paper: 3 %; allow 10 % slack for the scaled scenario).
    assert!(
        proposed < ener * 1.10,
        "Proposed ({proposed:.2}) must track Ener-aware ({ener:.2}) within 10%"
    );
    assert!(
        pri > proposed.min(ener) * 0.99,
        "plain packing cannot beat correlation-aware"
    );
}

#[test]
fn fig3_spread_policies_win_worst_case_response() {
    let reports = run_all();
    let proposed = totals_of(&reports, "Proposed");
    let ener = totals_of(&reports, "Ener-aware");
    let pri = totals_of(&reports, "Pri-aware");
    let net = totals_of(&reports, "Net-aware");
    // Both spread policies beat both packers on the worst case.
    assert!(
        proposed.worst_response_s < ener.worst_response_s
            && proposed.worst_response_s < pri.worst_response_s,
        "Proposed ({:.0}s) must beat the packers (E={:.0}s, Pri={:.0}s)",
        proposed.worst_response_s,
        ener.worst_response_s,
        pri.worst_response_s
    );
    assert!(
        net.worst_response_s < ener.worst_response_s && net.worst_response_s < pri.worst_response_s,
        "Net-aware ({:.0}s) must beat the packers (E={:.0}s, Pri={:.0}s)",
        net.worst_response_s,
        ener.worst_response_s,
        pri.worst_response_s
    );
    // The specialist claim is asserted on the *mean*: the worst case is
    // a single extremum over the horizon and (since slot 0 decides on a
    // zero bootstrap observation — see README, "Observation model") the
    // cold-start slot can own any policy's extremum at this 2-day CI
    // scale. The mean is the robust ordering the paper's Fig. 3 shape
    // implies for the response-time specialist.
    assert!(
        net.mean_response_s < proposed.mean_response_s,
        "Net-aware ({:.0}s mean) is the response-time specialist \
         (Proposed {:.0}s mean)",
        net.mean_response_s,
        proposed.mean_response_s
    );
}

#[test]
fn proposed_never_blows_the_migration_budget() {
    let reports = run_all();
    assert_eq!(totals_of(&reports, "Proposed").migration_overruns, 0);
}

#[test]
fn blind_baselines_blow_the_migration_budget() {
    let reports = run_all();
    let pri = totals_of(&reports, "Pri-aware");
    let net = totals_of(&reports, "Net-aware");
    assert!(
        pri.migration_overruns + net.migration_overruns > 0,
        "price/net chasing without Algorithm 2 must overrun sometimes"
    );
}

#[test]
fn green_controller_harvests_renewables_for_everyone() {
    let reports = run_all();
    for report in &reports {
        let grid: f64 = report.hourly.iter().map(|h| h.grid_energy_j).sum();
        let pv: f64 = report.hourly.iter().map(|h| h.pv_used_j).sum();
        assert!(pv > 0.0, "{} used no PV at all", report.policy);
        let total: f64 = report.hourly.iter().map(|h| h.total_energy_j).sum();
        // Supply adequacy at week scale.
        assert!(
            grid + pv > total * 0.5,
            "{} energy books look broken",
            report.policy
        );
    }
}
