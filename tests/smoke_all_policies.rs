//! Fast cross-policy smoke test: every shipped policy must complete a
//! tiny 2-slot scenario and produce finite, positive energy totals, and
//! same-seed runs must be bit-identical.

use geoplace::core::{ProposedConfig, ProposedPolicy};
use geoplace::prelude::*;

/// 2-slot scaled scenario, kept minimal so this test stays fast.
fn two_slot_config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::scaled(seed);
    config.horizon_slots = 2;
    config
}

fn run_policy(mut policy: &mut dyn GlobalPolicy, seed: u64) -> SimulationReport {
    let scenario = Scenario::build(&two_slot_config(seed)).expect("valid config");
    Simulator::new(scenario).run(&mut policy)
}

#[test]
fn all_policies_produce_finite_positive_energy() {
    let mut proposed = ProposedPolicy::new(ProposedConfig::default());
    let mut pri = PriAwarePolicy::new();
    let mut ener = EnerAwarePolicy::new();
    let mut net = NetAwarePolicy::new();
    let policies: Vec<&mut dyn GlobalPolicy> = vec![&mut proposed, &mut pri, &mut ener, &mut net];
    for policy in policies {
        let report = run_policy(policy, 11);
        let totals = report.totals();
        assert_eq!(
            report.hourly.len(),
            2,
            "{} did not finish both slots",
            report.policy
        );
        assert!(
            totals.energy_gj.is_finite() && totals.energy_gj > 0.0,
            "{} energy not finite-positive: {}",
            report.policy,
            totals.energy_gj
        );
        assert!(
            totals.cost_eur.is_finite() && totals.cost_eur > 0.0,
            "{} cost not finite-positive: {}",
            report.policy,
            totals.cost_eur
        );
    }
}

#[test]
fn same_seed_runs_have_identical_totals() {
    let totals = |seed| {
        let mut policy = ProposedPolicy::new(ProposedConfig::default());
        run_policy(&mut policy, seed).totals()
    };
    assert_eq!(
        totals(7),
        totals(7),
        "same seed must reproduce identical totals"
    );
}
