//! End-to-end integration tests: full scenarios through the public API.

use geoplace::core::{ProposedConfig, ProposedPolicy};
use geoplace::prelude::*;

fn tiny_config(seed: u64, slots: u32) -> ScenarioConfig {
    let mut config = ScenarioConfig::scaled(seed);
    config.horizon_slots = slots;
    config.fleet.arrivals.initial_groups = 16;
    config.fleet.arrivals.groups_per_slot = 1.0;
    config
}

#[test]
fn proposed_runs_a_full_day() {
    let config = ScenarioConfig::scaled(1);
    let scenario = Scenario::build(&config).expect("valid config");
    let mut policy = ProposedPolicy::new(ProposedConfig::default());
    let report = Simulator::new(scenario).run(&mut policy);
    assert_eq!(report.hourly.len(), 24);
    let totals = report.totals();
    assert!(totals.energy_gj > 0.0);
    assert!(totals.cost_eur > 0.0);
    assert_eq!(
        totals.migration_overruns, 0,
        "Algorithm 2 must respect the QoS budget"
    );
}

#[test]
fn identical_seeds_reproduce_identical_reports() {
    let run = || {
        let config = tiny_config(9, 6);
        let scenario = Scenario::build(&config).expect("valid config");
        let mut policy = ProposedPolicy::new(ProposedConfig::default());
        Simulator::new(scenario).run(&mut policy)
    };
    let a = run();
    let b = run();
    assert_eq!(a.hourly, b.hourly);
    assert_eq!(a.response_samples, b.response_samples);
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let config = tiny_config(seed, 6);
        let scenario = Scenario::build(&config).expect("valid config");
        let mut policy = ProposedPolicy::new(ProposedConfig::default());
        Simulator::new(scenario).run(&mut policy).totals()
    };
    assert_ne!(
        run(1),
        run(2),
        "different worlds must yield different numbers"
    );
}

#[test]
fn all_four_policies_complete_the_same_scenario() {
    let config = tiny_config(5, 8);
    let scenario = Scenario::build(&config).expect("valid config");
    let mut proposed = ProposedPolicy::new(ProposedConfig::default());
    let reports = vec![
        Simulator::new(Scenario::build(&config).expect("valid")).run(&mut proposed),
        Simulator::new(Scenario::build(&config).expect("valid")).run(&mut EnerAwarePolicy::new()),
        Simulator::new(Scenario::build(&config).expect("valid")).run(&mut PriAwarePolicy::new()),
        Simulator::new(Scenario::build(&config).expect("valid")).run(&mut NetAwarePolicy::new()),
    ];
    drop(scenario);
    for report in &reports {
        assert_eq!(report.hourly.len(), 8, "{} incomplete", report.policy);
        assert!(
            report.totals().energy_gj > 0.0,
            "{} burned no energy",
            report.policy
        );
    }
    // Same workload ⇒ same VM-hours ⇒ comparable energy ballpark (within
    // 2× of each other).
    let energies: Vec<f64> = reports.iter().map(|r| r.totals().energy_gj).collect();
    let max = energies.iter().cloned().fold(f64::MIN, f64::max);
    let min = energies.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 2.0, "energy spread implausible: {energies:?}");
}

#[test]
fn energy_accounting_balances() {
    // IT energy ≤ total energy (PUE ≥ 1), grid + pv_used ≥ total − battery.
    let config = tiny_config(3, 12);
    let scenario = Scenario::build(&config).expect("valid config");
    let mut policy = ProposedPolicy::new(ProposedConfig::default());
    let report = Simulator::new(scenario).run(&mut policy);
    for hour in &report.hourly {
        assert!(
            hour.it_energy_j <= hour.total_energy_j + 1e-6,
            "PUE must not shrink energy at slot {}",
            hour.slot
        );
        let supplied = hour.grid_energy_j + hour.pv_used_j + hour.battery_discharge_j;
        // grid includes battery charging, pv_used includes battery-bound
        // PV, so supply ≥ demand always.
        assert!(
            supplied + 1e-6 >= hour.total_energy_j - hour.battery_discharge_j,
            "supply {supplied} cannot cover demand {} at slot {}",
            hour.total_energy_j,
            hour.slot
        );
    }
}

#[test]
fn active_server_count_stays_within_fleet() {
    let config = tiny_config(4, 6);
    let total_servers: u32 = config.dcs.iter().map(|d| d.servers).sum();
    let scenario = Scenario::build(&config).expect("valid config");
    let mut policy = ProposedPolicy::new(ProposedConfig::default());
    let report = Simulator::new(scenario).run(&mut policy);
    for hour in &report.hourly {
        assert!(hour.active_servers <= total_servers);
        assert!(hour.active_vms > 0);
    }
}

#[test]
fn response_samples_cover_every_slot_and_dc() {
    let config = tiny_config(6, 10);
    let scenario = Scenario::build(&config).expect("valid config");
    let mut policy = ProposedPolicy::new(ProposedConfig::default());
    let report = Simulator::new(scenario).run(&mut policy);
    assert_eq!(report.response_samples.len(), 10 * 3);
    assert!(report
        .response_samples
        .iter()
        .all(|s| s.is_finite() && *s >= 0.0));
}

#[test]
fn per_dc_energy_sums_to_total() {
    let config = tiny_config(8, 6);
    let scenario = Scenario::build(&config).expect("valid config");
    let mut policy = ProposedPolicy::new(ProposedConfig::default());
    let report = Simulator::new(scenario).run(&mut policy);
    let per_dc_sum: f64 = report.per_dc_energy_gj.iter().sum();
    let totals = report.totals();
    assert!(
        (per_dc_sum - totals.energy_gj).abs() < 1e-9,
        "per-DC {per_dc_sum} vs total {}",
        totals.energy_gj
    );
}
