//! Cross-crate property-based tests (proptest): system invariants under
//! randomized inputs.

use geoplace::core::{ProposedConfig, ProposedPolicy};
use geoplace::network::{
    latency_constraint_for_qos, BerDistribution, LatencyModel, Topology, TrafficMatrix,
};
use geoplace::prelude::*;
use geoplace::types::units::Megabytes;
use geoplace::types::DcId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm 1 terminates and its latency is at least the error-free
    /// closed form, for any volume and seed.
    #[test]
    fn algorithm1_lower_bounded_by_error_free(volume_mb in 0.0f64..2.0e6, seed in 0u64..1000) {
        let noisy = LatencyModel::new(
            Topology::paper_default().unwrap(),
            BerDistribution::paper_default(),
        );
        let clean = LatencyModel::new(
            Topology::paper_default().unwrap(),
            BerDistribution::error_free(),
        );
        let mut rng1 = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let t_noisy = noisy.global_data_latency(Megabytes(volume_mb), &mut rng1);
        let t_clean = clean.global_data_latency(Megabytes(volume_mb), &mut rng2);
        prop_assert!(t_noisy.0 >= t_clean.0 - 1e-9);
        prop_assert!(t_noisy.0.is_finite());
    }

    /// Eq. 1 is monotone: adding volume never reduces the total latency.
    #[test]
    fn latency_monotone_in_volume(base_mb in 1.0f64..1.0e5, extra_mb in 0.0f64..1.0e5) {
        let model = LatencyModel::new(
            Topology::paper_default().unwrap(),
            BerDistribution::error_free(),
        );
        let mut small = TrafficMatrix::new(3);
        small.add(DcId(0), DcId(1), Megabytes(base_mb));
        let mut big = TrafficMatrix::new(3);
        big.add(DcId(0), DcId(1), Megabytes(base_mb + extra_mb));
        let mut rng = StdRng::seed_from_u64(1);
        let t_small = model.total_latency(DcId(1), &small, &mut rng);
        let t_big = model.total_latency(DcId(1), &big, &mut rng);
        prop_assert!(t_big.0 >= t_small.0 - 1e-9);
    }

    /// The QoS→budget map is linear and bounded by the slot length.
    #[test]
    fn qos_budget_well_formed(qos in 0.0f64..=1.0) {
        let budget = latency_constraint_for_qos(qos);
        prop_assert!(budget.0 >= 0.0);
        prop_assert!(budget.0 <= 3600.0);
    }

    /// Any seed yields a simulable world and a structurally complete
    /// report under the Proposed policy.
    #[test]
    fn any_seed_simulates(seed in 0u64..64) {
        let mut config = ScenarioConfig::scaled(seed);
        config.horizon_slots = 3;
        config.fleet.arrivals.initial_groups = 8;
        let scenario = Scenario::build(&config).expect("valid config");
        let mut policy = ProposedPolicy::new(ProposedConfig::default());
        let report = Simulator::new(scenario).run(&mut policy);
        prop_assert_eq!(report.hourly.len(), 3);
        for hour in &report.hourly {
            prop_assert!(hour.total_energy_j >= hour.it_energy_j);
            prop_assert!(hour.cost_eur >= 0.0);
            prop_assert!(hour.response_worst_s >= hour.response_mean_s - 1e-9);
        }
        prop_assert_eq!(report.totals().migration_overruns, 0);
    }

    /// The α knob always produces valid placements across its range.
    #[test]
    fn alpha_range_is_safe(alpha in 0.0f64..=1.0) {
        let mut config = ScenarioConfig::scaled(5);
        config.horizon_slots = 2;
        config.fleet.arrivals.initial_groups = 10;
        let scenario = Scenario::build(&config).expect("valid config");
        let mut policy = ProposedPolicy::new(ProposedConfig { alpha, ..ProposedConfig::default() });
        let report = Simulator::new(scenario).run(&mut policy);
        prop_assert_eq!(report.hourly.len(), 2);
    }
}
