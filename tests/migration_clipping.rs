//! Integration tests of the engine-enforced migration QoS constraint:
//! moves a policy requests but the network cannot deliver within the
//! latency budget are rejected, and the VM stays in its previous DC.

use geoplace::dcsim::decision::{PlacementDecision, ServerAssignment};
use geoplace::dcsim::power::FreqLevel;
use geoplace::dcsim::snapshot::SystemSnapshot;
use geoplace::prelude::*;
use geoplace::types::DcId;

/// A policy that ping-pongs the whole fleet between DC0 and DC1 every
/// slot — maximal migration pressure, zero latency awareness.
struct PingPong {
    tick: bool,
}

impl GlobalPolicy for PingPong {
    fn name(&self) -> &'static str {
        "ping-pong"
    }

    fn decide(&mut self, snapshot: &SystemSnapshot<'_>) -> PlacementDecision {
        self.tick = !self.tick;
        let dc = DcId(u16::from(self.tick));
        let mut decision = PlacementDecision::new(snapshot.dc_count());
        for (i, chunk) in snapshot.vm_ids().chunks(4).enumerate() {
            decision.push(
                dc,
                ServerAssignment {
                    server: i as u32,
                    freq: FreqLevel(1),
                    vms: chunk.to_vec(),
                },
            );
        }
        decision
    }
}

fn config(slots: u32) -> ScenarioConfig {
    let mut config = ScenarioConfig::scaled(17);
    config.horizon_slots = slots;
    config.fleet.arrivals.initial_groups = 30;
    config.fleet.arrivals.groups_per_slot = 0.0; // frozen fleet: pure ping-pong
    config.fleet.arrivals.mean_lifetime_slots = 1000.0;
    config
}

#[test]
fn ping_pong_is_throttled_by_the_qos_budget() {
    let scenario = Scenario::build(&config(6)).expect("valid config");
    let report = Simulator::new(scenario).run(&mut PingPong { tick: false });
    let totals = report.totals();
    // The fleet is ~90 VMs × 2–8 GB; a full swap each slot vastly exceeds
    // the 72 s budget, so most requested moves must be rejected…
    assert!(totals.migration_overruns > 0, "expected rejections");
    // …while the executed migrations stay within what the budget can
    // carry: at 10 Gb/s local links, 72 s moves at most ~90 GB into one
    // DC per slot.
    for hour in &report.hourly {
        assert!(
            hour.migration_volume_gb <= 95.0,
            "slot {} moved {} GB — over the physical budget",
            hour.slot,
            hour.migration_volume_gb
        );
    }
}

#[test]
fn clipped_vms_keep_running_and_burning_energy() {
    let scenario = Scenario::build(&config(4)).expect("valid config");
    let report = Simulator::new(scenario).run(&mut PingPong { tick: false });
    // Every VM still runs somewhere every slot: energy, server counts and
    // VM counts stay sane even though most of the decision was clipped.
    for hour in &report.hourly {
        assert!(hour.active_vms > 0);
        assert!(hour.active_servers > 0);
        assert!(hour.total_energy_j > 0.0);
    }
}

#[test]
fn compliant_policies_are_never_clipped() {
    use geoplace::core::{ProposedConfig, ProposedPolicy};
    let scenario = Scenario::build(&config(6)).expect("valid config");
    let mut policy = ProposedPolicy::new(ProposedConfig::default());
    let report = Simulator::new(scenario).run(&mut policy);
    assert_eq!(report.totals().migration_overruns, 0);
}
