//! # geoplace
//!
//! A faithful Rust reproduction of *"Exploiting CPU-Load and Data
//! Correlations in Multi-Objective VM Placement for Geo-Distributed Data
//! Centers"* (Pahlevan, Garcia del Valle, Atienza — DATE 2016).
//!
//! This meta-crate re-exports the whole workspace:
//!
//! * [`types`] — ids, physical units, simulation time;
//! * [`workload`] — VM traces, arrivals, CPU-load & data correlations;
//! * [`energy`] — PV generation, WCMA forecasting, batteries, tariffs,
//!   the rule-based green controller;
//! * [`network`] — geo topology, BER-aware latency (Eq. 1–4, Algorithm 1),
//!   migration feasibility, response time;
//! * [`dcsim`] — servers, DVFS power model, cooling/PUE, the slot/tick
//!   simulation engine and its metrics;
//! * [`core`] — the paper's contribution: force-directed clustering,
//!   capacity-capped k-means, migration revision (Algorithm 2),
//!   correlation-aware local allocation, assembled as
//!   [`core::ProposedPolicy`];
//! * [`baselines`] — the three state-of-the-art comparators (Pri-aware,
//!   Ener-aware, Net-aware).
//!
//! # Quickstart
//!
//! ```
//! use geoplace::prelude::*;
//!
//! // A small scaled-down scenario: 3 DCs, a day-long horizon.
//! let config = ScenarioConfig::scaled(42);
//! let scenario = Scenario::build(&config).expect("valid config");
//! let mut policy = ProposedPolicy::new(ProposedConfig::default());
//! let report = Simulator::new(scenario).run(&mut policy);
//! assert!(report.totals().energy_gj > 0.0);
//! ```

pub use geoplace_baselines as baselines;
pub use geoplace_core as core;
pub use geoplace_dcsim as dcsim;
pub use geoplace_energy as energy;
pub use geoplace_network as network;
pub use geoplace_types as types;
pub use geoplace_workload as workload;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use geoplace_baselines::{EnerAwarePolicy, NetAwarePolicy, PriAwarePolicy};
    pub use geoplace_core::{ProposedConfig, ProposedPolicy};
    pub use geoplace_dcsim::config::ScenarioConfig;
    pub use geoplace_dcsim::engine::{Scenario, Simulator};
    pub use geoplace_dcsim::metrics::SimulationReport;
    pub use geoplace_dcsim::policy::GlobalPolicy;
    pub use geoplace_types::{DcId, ServerId, TimeSlot, VmId};
}
