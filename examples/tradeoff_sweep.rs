//! Sweep the α knob of Eq. 5 — the energy/performance trade-off the
//! paper's force layout exposes (α → 1 favours data-correlation
//! attraction = performance; α → 0 favours CPU-load repulsion = energy).
//!
//! ```bash
//! cargo run --release --example tradeoff_sweep
//! ```

use geoplace::core::{ProposedConfig, ProposedPolicy};
use geoplace::prelude::*;

fn main() -> Result<(), geoplace::types::Error> {
    let mut config = ScenarioConfig::scaled(11);
    config.horizon_slots = 24;

    println!(
        "{:>5} {:>10} {:>10} {:>14} {:>14}",
        "alpha", "cost EUR", "energy GJ", "worst rt s", "mean rt s"
    );
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let scenario = Scenario::build(&config)?;
        let mut policy = ProposedPolicy::new(ProposedConfig {
            alpha,
            ..ProposedConfig::default()
        });
        let report = Simulator::new(scenario).run(&mut policy);
        let totals = report.totals();
        println!(
            "{alpha:>5.2} {:>10.2} {:>10.3} {:>14.1} {:>14.1}",
            totals.cost_eur, totals.energy_gj, totals.worst_response_s, totals.mean_response_s
        );
    }
    println!();
    println!("Higher α clusters chatty VMs (better response time); lower α");
    println!("separates load-correlated VMs (denser packing, lower energy).");
    Ok(())
}
