//! Head-to-head comparison of the paper's four policies on an identical
//! scenario — a miniature of the full evaluation (Figs. 1–4).
//!
//! ```bash
//! cargo run --release --example policy_comparison
//! ```

use geoplace::core::ProposedConfig;
use geoplace::prelude::*;

fn main() -> Result<(), geoplace::types::Error> {
    let mut config = ScenarioConfig::scaled(7);
    config.horizon_slots = 48; // two simulated days

    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>11}",
        "policy", "cost EUR", "energy GJ", "worst rt s", "migrations", "overruns"
    );

    // Each policy sees the *same* workload, weather and prices: scenarios
    // are rebuilt from the same config/seed.
    let run = |name: &str, report: geoplace::dcsim::SimulationReport| {
        let totals = report.totals();
        println!(
            "{:<12} {:>10.2} {:>10.3} {:>12.1} {:>12} {:>11}",
            name,
            totals.cost_eur,
            totals.energy_gj,
            totals.worst_response_s,
            totals.migrations,
            totals.migration_overruns
        );
    };

    let scenario = Scenario::build(&config)?;
    let mut proposed = ProposedPolicy::new(ProposedConfig::default());
    run("Proposed", Simulator::new(scenario).run(&mut proposed));

    let scenario = Scenario::build(&config)?;
    run(
        "Ener-aware",
        Simulator::new(scenario).run(&mut EnerAwarePolicy::new()),
    );

    let scenario = Scenario::build(&config)?;
    run(
        "Pri-aware",
        Simulator::new(scenario).run(&mut PriAwarePolicy::new()),
    );

    let scenario = Scenario::build(&config)?;
    run(
        "Net-aware",
        Simulator::new(scenario).run(&mut NetAwarePolicy::new()),
    );

    println!();
    println!("Expected shape (paper, Figs. 1-6): Proposed cheapest; Ener-aware");
    println!("lowest energy but worst cost & worst-case response; Net-aware best");
    println!("response but highest energy; Pri-aware in between.");
    Ok(())
}
