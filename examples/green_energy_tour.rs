//! A tour of the energy substrate: PV generation, WCMA forecasting,
//! battery cycling and the rule-based green controller, standalone from
//! the placement algorithms.
//!
//! ```bash
//! cargo run --release --example green_energy_tour
//! ```

use geoplace::energy::prelude::*;
use geoplace::types::time::{Tick, TimeSlot, TICKS_PER_SLOT, TICK_SECONDS};
use geoplace::types::units::{EurosPerKwh, KilowattHours, Seconds, Watts};

fn main() -> Result<(), geoplace::types::Error> {
    // Lisbon's array from Table I: 150 kWp, battery 960 kWh at 50 % DoD.
    let pv = PvArray::new(
        150.0,
        Site {
            latitude_deg: 38.72,
            timezone_offset_hours: 0,
        },
        9,
    );
    let mut battery = Battery::new(KilowattHours(960.0), 0.5)?;
    let tariff = PriceSchedule::new(EurosPerKwh(0.12), EurosPerKwh(0.26), 8..22, 0)?;
    let controller = GreenController::default();
    let mut forecaster = WcmaForecaster::new(4, 3);

    // A constant 60 kW IT+cooling load for three simulated days.
    let demand = Watts(60_000.0);
    let mut grid_cost = 0.0;
    let mut grid_energy_kwh = 0.0;
    let mut pv_energy_kwh = 0.0;

    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "hour", "pv kW", "forecast kW", "grid kW", "soc %", "tariff"
    );
    for slot_index in 0..72u32 {
        let slot = TimeSlot(slot_index);
        let forecast = forecaster.forecast(slot);
        let mut slot_pv = 0.0f64;
        let mut slot_grid = 0.0f64;
        for tick_in_slot in 0..TICKS_PER_SLOT as u64 {
            let tick = Tick(u64::from(slot_index) * TICKS_PER_SLOT as u64 + tick_in_slot);
            let pv_power = pv.power_at(tick);
            let outcome = controller.step(
                pv_power,
                demand,
                tariff.level(slot),
                &mut battery,
                Seconds(TICK_SECONDS),
            );
            slot_pv += pv_power.0 * TICK_SECONDS;
            slot_grid += outcome.grid.0 * TICK_SECONDS;
        }
        forecaster.observe(slot, geoplace::types::units::Joules(slot_pv));
        let slot_grid_kwh = slot_grid / 3.6e6;
        grid_cost += tariff.price_at(slot).0 * slot_grid_kwh;
        grid_energy_kwh += slot_grid_kwh;
        pv_energy_kwh += slot_pv / 3.6e6;
        if slot_index % 3 == 0 {
            println!(
                "{:>5} {:>12.1} {:>12.1} {:>12.1} {:>10.1} {:>12}",
                slot_index,
                slot_pv / 3.6e6,
                forecast.0 / 3.6e6,
                slot_grid_kwh,
                battery.soc_fraction() * 100.0,
                format!("{}", tariff.price_at(slot)),
            );
        }
    }

    println!();
    println!("grid energy : {grid_energy_kwh:.0} kWh");
    println!("pv harvested: {pv_energy_kwh:.0} kWh");
    println!("grid cost   : {grid_cost:.2} EUR");
    println!("battery SoC : {:.1} %", battery.soc_fraction() * 100.0);
    println!();
    println!("Note the WCMA forecast locking onto the diurnal PV curve after");
    println!("day one, and the battery discharging only during peak-tariff hours.");
    Ok(())
}
