//! Quickstart: build a scaled scenario, run the paper's Proposed policy
//! for one simulated day, and print the headline numbers.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use geoplace::prelude::*;

fn main() -> Result<(), geoplace::types::Error> {
    // A laptop-scale scenario: the paper's three sites (Lisbon, Zurich,
    // Helsinki) at 1/10 fleet size, one simulated day, ~100 VMs.
    let config = ScenarioConfig::scaled(42);
    let scenario = Scenario::build(&config)?;

    // The paper's two-phase multi-objective placement with default tuning
    // (α = 0.5 — balanced energy/performance trade-off).
    let mut policy = ProposedPolicy::new(geoplace::core::ProposedConfig::default());
    let report = Simulator::new(scenario).run(&mut policy);

    let totals = report.totals();
    println!("policy             : {}", report.policy);
    println!("simulated slots    : {}", report.hourly.len());
    println!("operational cost   : {:.2} EUR", totals.cost_eur);
    println!("total energy       : {:.3} GJ", totals.energy_gj);
    println!("grid energy        : {:.3} GJ", totals.grid_energy_gj);
    println!("worst response time: {:.1} s", totals.worst_response_s);
    println!(
        "migrations         : {} ({} over budget)",
        totals.migrations, totals.migration_overruns
    );
    println!("mean servers on    : {:.1}", totals.mean_active_servers);

    // The per-hour series behind the paper's Fig. 1 and Fig. 2.
    let peak_cost_hour = report
        .hourly
        .iter()
        .max_by(|a, b| a.cost_eur.partial_cmp(&b.cost_eur).expect("finite costs"))
        .expect("at least one slot");
    println!(
        "most expensive hour: slot {} at {:.3} EUR",
        peak_cost_hour.slot, peak_cost_hour.cost_eur
    );
    Ok(())
}
