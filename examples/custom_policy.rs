//! Writing your own placement policy against the `GlobalPolicy` trait and
//! racing it against the paper's algorithm.
//!
//! The example implements "Greedy-Green": put every VM in the DC with the
//! most forecast renewable energy, pack with plain round-robin. It loses
//! to the Proposed policy on cost — renewables alone are not enough — but
//! shows the full extension surface of the simulator.
//!
//! ```bash
//! cargo run --release --example custom_policy
//! ```

use geoplace::core::{ProposedConfig, ProposedPolicy};
use geoplace::dcsim::decision::{PlacementDecision, ServerAssignment};
use geoplace::dcsim::snapshot::SystemSnapshot;
use geoplace::prelude::*;

/// Chase the sunniest forecast, ignore everything else.
struct GreedyGreen;

impl GlobalPolicy for GreedyGreen {
    fn name(&self) -> &'static str {
        "Greedy-Green"
    }

    fn decide(&mut self, snapshot: &SystemSnapshot<'_>) -> PlacementDecision {
        let mut decision = PlacementDecision::new(snapshot.dc_count());
        if snapshot.vm_count() == 0 {
            return decision;
        }
        // The DC with the largest battery + forecast free energy.
        let best = snapshot
            .dcs
            .iter()
            .max_by(|a, b| {
                let fa = a.battery_available.0 + a.pv_forecast.0;
                let fb = b.battery_available.0 + b.pv_forecast.0;
                fa.partial_cmp(&fb).expect("finite energies")
            })
            .expect("at least one DC");
        let model = &best.power_model;
        // Conservative packing: as many VMs per server as vCPUs fit.
        let cores_per_server = model.cores();
        let mut server = 0u32;
        let mut used = 0u32;
        let mut current: Vec<geoplace::types::VmId> = Vec::new();
        for (pos, &vm) in snapshot.vm_ids().iter().enumerate() {
            let need = snapshot.vm_cores[pos];
            if used + need > cores_per_server && !current.is_empty() {
                decision.push(
                    best.id,
                    ServerAssignment {
                        server,
                        freq: model.max_level(),
                        vms: std::mem::take(&mut current),
                    },
                );
                server += 1;
                used = 0;
            }
            current.push(vm);
            used += need;
        }
        if !current.is_empty() {
            decision.push(
                best.id,
                ServerAssignment {
                    server,
                    freq: model.max_level(),
                    vms: current,
                },
            );
        }
        decision
    }
}

fn main() -> Result<(), geoplace::types::Error> {
    let mut config = ScenarioConfig::scaled(23);
    config.horizon_slots = 24;

    let scenario = Scenario::build(&config)?;
    let greedy = Simulator::new(scenario).run(&mut GreedyGreen);

    let scenario = Scenario::build(&config)?;
    let mut proposed_policy = ProposedPolicy::new(ProposedConfig::default());
    let proposed = Simulator::new(scenario).run(&mut proposed_policy);

    for report in [&greedy, &proposed] {
        let totals = report.totals();
        println!(
            "{:<14} cost {:>8.2} EUR | energy {:>7.3} GJ | worst rt {:>8.1} s",
            report.policy, totals.cost_eur, totals.energy_gj, totals.worst_response_s
        );
    }
    println!();
    println!("Greedy-Green chases sunshine but ignores prices, correlations and");
    println!("the migration budget; the two-phase algorithm beats it on cost.");
    Ok(())
}
