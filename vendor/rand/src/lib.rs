//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`Rng`],
//! [`SeedableRng`], and [`rngs::StdRng`]. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic for a given seed, with no
//! entropy-based constructors on purpose (library code must be
//! reproducible; see the workspace README).
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0..10usize);
//! assert!(k < 10);
//! ```

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a bit source ([`Rng::gen`]).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), matching rand's `Standard` for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (`f64`/`f32` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Not the same stream as upstream rand's `StdRng` (ChaCha12), but a
    /// high-quality deterministic generator with the same construction API.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing. Restoring with
        /// [`StdRng::from_state`] resumes the exact stream position.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// The all-zero state is a fixed point of xoshiro256++ (the stream
        /// would be constant zero); it never occurs in practice because
        /// SplitMix64 seeding cannot produce it, so it is mapped to the
        /// seed-0 generator to keep restored streams well-defined.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                Self::seed_from_u64(0)
            } else {
                StdRng { s }
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let k = rng.gen_range(3..17usize);
            assert!((3..17).contains(&k));
            let j = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn float_ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&x));
            let y = rng.gen_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
