//! Offline vendored stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! report types so that downstream consumers can serialize them, but no
//! in-tree code path performs actual serialization (the build
//! environment has no crates.io access, so `serde_json` and friends are
//! unavailable). This stub keeps the derive attributes compiling as
//! marker impls; swap it for real serde by pointing the workspace
//! dependency back at crates.io.

/// Marker for types whose serialized form is well-defined.
pub trait Serialize {}

/// Marker for types reconstructible from a serialized form.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_markers!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
impl Serialize for str {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
