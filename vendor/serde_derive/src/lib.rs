//! Offline vendored stub of `serde_derive`.
//!
//! Emits empty marker impls of the stub `serde::Serialize` /
//! `serde::Deserialize` traits. Parses the item header by hand (no
//! `syn`/`quote` available offline): skips attributes and visibility,
//! reads the `struct`/`enum` name and any generic parameter names.

use proc_macro::{TokenStream, TokenTree};

struct Header {
    name: String,
    /// Generic parameter names only (`'a`, `T`, `N`), no bounds/defaults.
    params: Vec<String>,
    /// Full parameter declarations (bounds kept, defaults stripped).
    decls: Vec<String>,
}

fn parse_header(input: TokenStream) -> Header {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (#[...]) and visibility / doc tokens until `struct`/`enum`.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => break,
            _ => i += 1,
        }
    }
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    let mut params = Vec::new();
    let mut decls = Vec::new();
    // Optional generics: `<` ... `>` immediately after the name.
    if matches!(&tokens.get(i + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 1usize;
        let mut j = i + 3;
        let mut current: Vec<String> = Vec::new();
        let mut bound_depth: Option<usize> = None;
        while j < tokens.len() && depth > 0 {
            match &tokens[j] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        if !current.is_empty() {
                            push_param(&mut params, &mut decls, &current);
                        }
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    push_param(&mut params, &mut decls, &current);
                    current.clear();
                    bound_depth = None;
                }
                TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                    // Start of bounds: keep collecting raw tokens for the decl
                    // but remember where the bare name ends.
                    if bound_depth.is_none() {
                        bound_depth = Some(current.len());
                    }
                    current.push(":".into());
                }
                tt => current.push(tt.to_string()),
            }
            j += 1;
        }
    }
    Header {
        name,
        params,
        decls,
    }
}

fn push_param(params: &mut Vec<String>, decls: &mut Vec<String>, raw: &[String]) {
    // raw is e.g. ["'", "a"], ["T"], ["T", ":", "Clone"], ["const", "N", ":", "usize"].
    let decl: String = {
        // Drop a trailing `= default` if present.
        let cut = raw.iter().position(|t| t == "=").unwrap_or(raw.len());
        raw[..cut].join(" ")
    };
    let name = if raw.first().map(String::as_str) == Some("'") {
        format!("'{}", raw.get(1).cloned().unwrap_or_default())
    } else if raw.first().map(String::as_str) == Some("const") {
        raw.get(1).cloned().unwrap_or_default()
    } else {
        raw.first().cloned().unwrap_or_default()
    };
    params.push(name);
    decls.push(decl.replace("' ", "'"));
}

fn impl_for(input: TokenStream, make: impl Fn(&Header) -> String) -> TokenStream {
    let header = parse_header(input);
    make(&header)
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_for(input, |h| {
        let args = if h.params.is_empty() {
            String::new()
        } else {
            format!("<{}>", h.params.join(", "))
        };
        let decls = if h.decls.is_empty() {
            String::new()
        } else {
            format!("<{}>", h.decls.join(", "))
        };
        format!("impl{decls} ::serde::Serialize for {}{args} {{}}", h.name)
    })
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_for(input, |h| {
        let args = if h.params.is_empty() {
            String::new()
        } else {
            format!("<{}>", h.params.join(", "))
        };
        let decls = if h.decls.is_empty() {
            "<'de_stub>".to_string()
        } else {
            format!("<'de_stub, {}>", h.decls.join(", "))
        };
        format!(
            "impl{decls} ::serde::Deserialize<'de_stub> for {}{args} {{}}",
            h.name
        )
    })
}
