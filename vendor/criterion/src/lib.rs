//! Offline vendored mini `criterion`.
//!
//! Provides the API slice the workspace benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) with a simple
//! wall-clock measurement loop: warm up briefly, then time batches until
//! ~100 ms elapse and report the mean iteration time. No statistics,
//! plots or baselines — swap for real criterion when crates.io access is
//! available.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for a parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        black_box(routine());
        let budget = Duration::from_millis(100);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            black_box(routine());
            iters += 1;
            if iters >= 10_000 {
                break;
            }
        }
        self.mean = Some(start.elapsed() / iters.max(1) as u32);
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Group of related benchmark cases sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's time budget is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { mean: None };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("bench {label:<50} {mean:>12.2?}/iter"),
        None => println!("bench {label:<50} (no b.iter call)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
