//! Offline vendored mini `proptest`.
//!
//! Implements the slice of the proptest API the workspace tests use —
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`, range and tuple
//! strategies, `collection::vec`, `any::<T>()` and
//! `ProptestConfig::with_cases` — on top of the vendored `rand`.
//! Differences from upstream: no shrinking (the failing input is printed
//! as-is) and a smaller default case count (64).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-block configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator driving every `proptest!` block.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Fixed-seed construction: property runs are reproducible by design.
    pub fn deterministic() -> Self {
        TestRng(StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15))
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

/// Generates values of `Self::Value` from the test generator.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: std::fmt::Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, spanning several orders of magnitude.
        let mantissa: f64 = rng.rng().gen_range(-1.0..1.0);
        let exponent: i32 = rng.rng().gen_range(-8..=8);
        mantissa * (2.0f64).powi(exponent)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: an exact `usize` or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            SizeRange {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.rng().gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format_args!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`; {}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format_args!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($params:tt)* ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $crate::__proptest_bind!(__rng; $($params)*);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("proptest case {}/{}: {}", __case + 1, __config.cases, e);
                    }
                }
            }
        )*
    };
}

/// Expands each `pat in strategy` or `name: Type` parameter to a `let`
/// binding drawn from `rng`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}
